// gptpu-analyze: deterministic-file -- output and dispatch order
// here must be independent of hash-map layout (docs/ANALYSIS.md R10).
#include "runtime/scheduler.hpp"

#include <algorithm>

#include "common/flight_recorder.hpp"
#include "common/metrics.hpp"

namespace gptpu::runtime {

namespace {
/// Global mirrors of the per-scheduler affinity tallies, resolved once.
struct SchedulerMetrics {
  metrics::Counter& hits;
  metrics::Counter& misses;
  metrics::Counter& bytes_avoided;

  static SchedulerMetrics& get() {
    auto& reg = metrics::MetricRegistry::global();
    static SchedulerMetrics m{
        // wall domain: affinity decisions are dispatch-time *estimates*
        // that observe concurrent worker-side evictions, so the tallies
        // legitimately vary run to run even when the executed virtual
        // timeline does not.
        reg.counter("wall.scheduler.affinity_hits"),
        reg.counter("wall.scheduler.affinity_misses"),
        reg.counter("wall.scheduler.retransfer_bytes_avoided"),
    };
    return m;
  }
};
}  // namespace

Scheduler::Scheduler(usize num_devices, bool affinity_enabled)
    : affinity_enabled_(affinity_enabled),
      num_devices_(num_devices),
      load_(num_devices, 0.0),
      dead_(num_devices, 0) {
  GPTPU_CHECK(num_devices >= 1, "Scheduler needs at least one device");
}

Scheduler::Assignment Scheduler::assign_detailed(
    std::span<const TileNeed> tiles, Seconds instr_seconds, Seconds ready,
    u64 trace_id, u16 plan_order) {
  usize total_bytes = 0;
  for (const auto& [key, bytes] : tiles) {
    (void)key;
    total_bytes += bytes;
  }

  Assignment result;
  {
    MutexLock lock(mu_);
    bool have_choice = false;
    usize chosen = 0;
    Seconds chosen_finish = 0;
    usize chosen_missing = total_bytes;
    for (usize d = 0; d < load_.size(); ++d) {
      if (dead_[d] != 0) continue;
      usize missing = total_bytes;
      if (affinity_enabled_) {
        for (const auto& [key, bytes] : tiles) {
          const auto it = residency_.find(key);
          if (it != residency_.end() && it->second.contains(d)) {
            missing -= bytes;
          }
        }
      }
      const Seconds finish =
          std::max(ready, load_[d]) + instr_seconds +
          static_cast<double>(missing) * perfmodel::kLinkSecondsPerByte;
      if (!have_choice || finish < chosen_finish) {
        have_choice = true;
        chosen = d;
        chosen_finish = finish;
        chosen_missing = missing;
      }
    }
    GPTPU_CHECK(have_choice,
                "assign_detailed: no alive device (callers must check "
                "alive_count() and fall back to the CPU path)");

    result.device = chosen;
    result.queue_wait = std::max(0.0, load_[chosen] - ready);
    result.resident_bytes = total_bytes - chosen_missing;
    if (affinity_enabled_) {
      for (usize i = 0; i < tiles.size() && i < 32; ++i) {
        const auto it = residency_.find(tiles[i].first);
        if (it != residency_.end() && it->second.contains(chosen)) {
          result.resident_mask |= u32{1} << i;
        }
      }
    }
    if (affinity_enabled_ && !tiles.empty()) {
      if (result.resident_bytes > 0) {
        ++affinity_hits_;
      } else {
        ++affinity_misses_;
      }
    }

    load_[chosen] = chosen_finish;
    for (const auto& [key, bytes] : tiles) {
      (void)bytes;
      residency_[key].insert(chosen);
    }
  }

  if (affinity_enabled_ && !tiles.empty()) {
    auto& m = SchedulerMetrics::get();
    if (result.resident_bytes > 0) {
      m.hits.add(1);
      m.bytes_avoided.add(result.resident_bytes);
    } else {
      m.misses.add(1);
    }
  }
  if (trace_id != 0 && flight::armed()) {
    flight::emit({.trace_id = trace_id,
                  .kind = flight::EventKind::kQueued,
                  .detail = plan_order,
                  .device = static_cast<u32>(result.device),
                  .vt = ready});
  }
  return result;
}

Scheduler::Assignment Scheduler::assign_pinned(usize device,
                                               std::span<const TileNeed> tiles,
                                               Seconds instr_seconds,
                                               Seconds ready, u64 trace_id,
                                               u16 plan_order) {
  usize total_bytes = 0;
  for (const auto& [key, bytes] : tiles) {
    (void)key;
    total_bytes += bytes;
  }

  Assignment result;
  result.device = device;
  {
    MutexLock lock(mu_);
    GPTPU_CHECK(device < load_.size(), "assign_pinned: bad device index");
    GPTPU_CHECK(dead_[device] == 0, "assign_pinned: device is dead");
    usize missing = total_bytes;
    if (affinity_enabled_) {
      for (usize i = 0; i < tiles.size(); ++i) {
        const auto it = residency_.find(tiles[i].first);
        if (it != residency_.end() && it->second.contains(device)) {
          missing -= tiles[i].second;
          if (i < 32) result.resident_mask |= u32{1} << i;
        }
      }
    }
    result.queue_wait = std::max(0.0, load_[device] - ready);
    result.resident_bytes = total_bytes - missing;
    if (affinity_enabled_ && !tiles.empty()) {
      if (result.resident_bytes > 0) {
        ++affinity_hits_;
      } else {
        ++affinity_misses_;
      }
    }
    load_[device] =
        std::max(ready, load_[device]) + instr_seconds +
        static_cast<double>(missing) * perfmodel::kLinkSecondsPerByte;
    for (const auto& [key, bytes] : tiles) {
      (void)bytes;
      residency_[key].insert(device);
    }
  }

  if (affinity_enabled_ && !tiles.empty()) {
    auto& m = SchedulerMetrics::get();
    if (result.resident_bytes > 0) {
      m.hits.add(1);
      m.bytes_avoided.add(result.resident_bytes);
    } else {
      m.misses.add(1);
    }
  }
  if (trace_id != 0 && flight::armed()) {
    flight::emit({.trace_id = trace_id,
                  .kind = flight::EventKind::kQueued,
                  .detail = plan_order,
                  .device = static_cast<u32>(result.device),
                  .vt = ready});
  }
  return result;
}

double Scheduler::affinity_hit_rate() const {
  MutexLock lock(mu_);
  const u64 eligible = affinity_hits_ + affinity_misses_;
  if (eligible == 0) return 0.0;
  return static_cast<double>(affinity_hits_) / static_cast<double>(eligible);
}

void Scheduler::drop_tile(usize device, u64 key) {
  MutexLock lock(mu_);
  const auto it = residency_.find(key);
  if (it == residency_.end()) return;
  it->second.erase(device);
  if (it->second.empty()) residency_.erase(it);
}

void Scheduler::mark_dead(usize device) {
  MutexLock lock(mu_);
  GPTPU_CHECK(device < dead_.size(), "mark_dead: bad device index");
  if (dead_[device] != 0) return;
  dead_[device] = 1;
  // The device's resident tensors are gone with it; keeping the entries
  // would steer future plans toward phantom residency.
  for (auto it = residency_.begin(); it != residency_.end();) {
    it->second.erase(device);
    it = it->second.empty() ? residency_.erase(it) : std::next(it);
  }
}

usize Scheduler::alive_count() const {
  MutexLock lock(mu_);
  usize alive = 0;
  for (const char d : dead_) alive += d == 0 ? 1 : 0;
  return alive;
}

void Scheduler::reset() {
  MutexLock lock(mu_);
  std::fill(load_.begin(), load_.end(), 0.0);
  std::fill(dead_.begin(), dead_.end(), 0);
  residency_.clear();
  affinity_hits_ = 0;
  affinity_misses_ = 0;
}

}  // namespace gptpu::runtime
