// Overload-robust multi-tenant serving front end (docs/SERVING.md).
//
// A serving::Server sits between request producers ("tenants") and one
// runtime::Runtime and keeps the pool predictable when offered load
// exceeds capacity:
//  * per-tenant bounded submission queues -- admission control rejects
//    with kResourceExhausted the moment a tenant's cap is hit, instead of
//    queueing unboundedly;
//  * three QoS classes served in strict priority (latency > throughput >
//    best-effort), with self-clocked weighted-fair queuing between the
//    tenants of one class;
//  * graceful load shedding -- best-effort arrivals are dropped first
//    (global shed watermark, or the circuit breaker's kShedding state)
//    so latency-class p99 stays bounded under overload;
//  * per-op deadlines in virtual time -- an op that expires while queued
//    fails with kDeadlineExceeded without consuming device time, and the
//    runtime clamps watchdog/backoff to the remaining budget;
//  * a circuit breaker derived from the pool's health: when too few
//    devices survive, admissions are shed (kShedding) or rejected
//    outright (kOpen) instead of piling up behind redispatch.
//
// Execution model: a single-threaded discrete-event simulation over the
// modelled (virtual) timeline. submit() carries the op's virtual arrival
// instant; the server completes every modelled in-flight op up to that
// instant (freeing dispatch slots and draining queues at each completion)
// before running admission for the new arrival. Runtime::invoke is called
// synchronously in nondecreasing virtual dispatch order, so ops overlap
// in virtual time even though they are invoked sequentially in wall time
// -- and every admission / shed / deadline decision is a pure function of
// the submission sequence. Same-seed replays are byte-identical
// (scripts/serving_smoke.py).
//
// Thread safety: all entry points serialize on one mutex, so concurrent
// producers are safe (tests/test_serving.cpp TSan stress). Determinism is
// only guaranteed when arrivals are submitted in nondecreasing arrival_vt
// order -- concurrent producers trade the replay guarantee for liveness.
#pragma once

#include <array>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "common/domain_annotations.hpp"
#include "common/status.hpp"
#include "common/thread_annotations.hpp"
#include "runtime/operation.hpp"
#include "runtime/runtime.hpp"

namespace gptpu::serving {

/// Service classes, in strict dispatch-priority order.
enum class QosClass : u8 { kLatency = 0, kThroughput = 1, kBestEffort = 2 };
inline constexpr usize kNumQosClasses = 3;

[[nodiscard]] constexpr std::string_view qos_class_name(QosClass qos) {
  switch (qos) {
    case QosClass::kLatency: return "latency";
    case QosClass::kThroughput: return "throughput";
    case QosClass::kBestEffort: return "best_effort";
  }
  return "unknown";
}

struct TenantSpec {
  std::string name;
  QosClass qos = QosClass::kThroughput;
  /// Fair-share weight against the other tenants of the same class.
  double weight = 1.0;
  /// Bounded submission queue: arrivals beyond this many queued ops are
  /// rejected with kResourceExhausted (clamped to >= 1).
  usize queue_cap = 64;
  /// Default per-op deadline, relative to arrival (0 = none); submit()
  /// can override per op.
  Seconds default_deadline_vt = 0;
};

/// Circuit-breaker states, derived from the pool's alive-device fraction.
enum class BreakerState : u8 { kClosed = 0, kShedding = 1, kOpen = 2 };

[[nodiscard]] constexpr std::string_view breaker_state_name(BreakerState s) {
  switch (s) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kShedding: return "shedding";
    case BreakerState::kOpen: return "open";
  }
  return "unknown";
}

struct ServingConfig {
  std::vector<TenantSpec> tenants;
  /// Modelled dispatch window: ops admitted to the Runtime but not yet
  /// virtually complete. 0 = 2x the runtime's device count.
  usize max_inflight = 0;
  /// Total queued ops (across all tenants) at which best-effort arrivals
  /// start being shed. 0 = half the summed queue caps.
  usize shed_watermark = 0;
  /// Breaker thresholds on the alive-device fraction: at or below
  /// `open_below` every arrival is rejected (kOpen); at or below
  /// `shed_below` best-effort arrivals are shed (kShedding). An all-dead
  /// pool is always kOpen.
  double breaker_open_below = 0.0;
  double breaker_shed_below = 0.0;
};

/// Terminal (and one transient) states of a submission. Every admitted op
/// resolves to exactly one of kLanded / kExpired / kFailed; every
/// submission that was not admitted is kRejected or kShed.
enum class Outcome : u8 {
  kQueued = 0,  // still in a submission queue (only before drain())
  kLanded,      // completed; done_vt is the modelled completion instant
  kRejected,    // admission control said no (queue cap or open breaker)
  kShed,        // dropped by load shedding (best-effort under pressure)
  kExpired,     // deadline ran out (while queued, or inside the runtime)
  kFailed,      // the runtime failed it permanently (OperationFailed)
};

[[nodiscard]] constexpr std::string_view outcome_name(Outcome o) {
  switch (o) {
    case Outcome::kQueued: return "queued";
    case Outcome::kLanded: return "landed";
    case Outcome::kRejected: return "rejected";
    case Outcome::kShed: return "shed";
    case Outcome::kExpired: return "expired";
    case Outcome::kFailed: return "failed";
  }
  return "unknown";
}

/// Resolution of one submission, queried by ticket.
struct TicketStatus {
  Outcome outcome = Outcome::kQueued;
  /// kOk for kLanded; the typed failure otherwise (kResourceExhausted for
  /// rejections/sheds, kDeadlineExceeded for expiries, the runtime's code
  /// for kFailed).
  StatusCode status = StatusCode::kOk;
  u32 tenant = 0;
  Seconds arrival_vt = 0;
  /// kLanded: modelled completion instant; otherwise the virtual instant
  /// the op left the system.
  Seconds done_vt = 0;
};

/// Per-tenant accounting. Invariants (tests/test_serving.cpp):
///   submitted == admitted + rejected_queue_full + rejected_breaker + shed
///   admitted  == landed + expired + failed          (after drain())
struct TenantStats {
  u64 submitted = 0;
  u64 admitted = 0;
  u64 rejected_queue_full = 0;
  u64 rejected_breaker = 0;
  u64 shed = 0;
  u64 expired = 0;
  u64 landed = 0;
  u64 failed = 0;
  u64 max_queue_depth = 0;
};

class Server {
 public:
  /// The runtime must outlive the server. Throws InvalidArgument on an
  /// empty or malformed tenant list.
  Server(runtime::Runtime& rt, ServingConfig config);

  /// Submits one op for `tenant` arriving at `arrival_vt` (absolute
  /// virtual time). `deadline_vt` is relative to arrival; negative =
  /// tenant default, 0 = explicitly none. The request's buffers must stay
  /// alive until the op resolves. Returns the submission's ticket.
  GPTPU_VIRTUAL_DOMAIN
  u64 submit(usize tenant, const runtime::OperationRequest& request,
             Seconds arrival_vt, Seconds deadline_vt = -1)
      GPTPU_EXCLUDES(mu_);

  /// Runs the simulation to quiescence: every queued op is dispatched or
  /// expired, every in-flight op completed. Returns the last modelled
  /// completion instant (the serving makespan).
  GPTPU_VIRTUAL_DOMAIN
  Seconds drain() GPTPU_EXCLUDES(mu_);

  [[nodiscard]] TicketStatus ticket(u64 id) const GPTPU_EXCLUDES(mu_);
  [[nodiscard]] TenantStats tenant_stats(usize tenant) const
      GPTPU_EXCLUDES(mu_);
  [[nodiscard]] usize num_tenants() const { return config_.tenants.size(); }
  [[nodiscard]] TenantSpec tenant_spec(usize tenant) const
      GPTPU_EXCLUDES(mu_);
  [[nodiscard]] BreakerState breaker() const GPTPU_EXCLUDES(mu_);
  /// Serving clock: the latest virtual instant processed.
  GPTPU_VIRTUAL_DOMAIN
  [[nodiscard]] Seconds now() const GPTPU_EXCLUDES(mu_);
  /// Tickets dropped by load shedding, in decision order -- the
  /// deterministic "shed set" serving.smoke byte-compares across replays.
  [[nodiscard]] std::vector<u64> shed_tickets() const GPTPU_EXCLUDES(mu_);

 private:
  struct Pending {
    u64 ticket = 0;
    runtime::OperationRequest request;
    Seconds arrival_vt = 0;
    Seconds deadline_vt = 0;  // absolute; 0 = none
    /// SCFQ virtual finish tag, fixed at admission. Tags must not be
    /// recomputed at pick time: a backlogged tenant re-tagged against the
    /// advancing class round would chase it forever and starve.
    double tag = 0;
  };
  struct Tenant {
    TenantSpec spec;
    std::deque<Pending> queue;
    /// SCFQ virtual finish tag of the tenant's last admitted op.
    double finish_tag = 0;
    TenantStats stats;
  };

  /// Completes every modelled in-flight op with completion <= vt, pumping
  /// the queues at each completion instant, then advances the clock.
  GPTPU_VIRTUAL_DOMAIN
  void advance_locked(Seconds vt) GPTPU_REQUIRES(mu_);
  /// Dispatches queued ops at virtual instant vt while dispatch slots are
  /// free (expiring queued ops whose deadline has passed).
  GPTPU_VIRTUAL_DOMAIN
  void pump_locked(Seconds vt) GPTPU_REQUIRES(mu_);
  /// SCFQ pick: highest non-empty class, minimum head finish tag within
  /// it (ties to the lower tenant index). Returns -1 when every queue is
  /// empty.
  [[nodiscard]] int pick_tenant_locked() const GPTPU_REQUIRES(mu_);
  GPTPU_VIRTUAL_DOMAIN
  void refresh_breaker_locked() GPTPU_REQUIRES(mu_);
  void resolve_locked(u64 ticket, Outcome outcome, StatusCode status,
                      Seconds at) GPTPU_REQUIRES(mu_);
  /// Pops the earliest modelled completion (min-heap over inflight_).
  Seconds pop_completion_locked() GPTPU_REQUIRES(mu_);

  runtime::Runtime& rt_;
  const ServingConfig config_;
  usize max_inflight_ = 0;
  usize shed_watermark_ = 0;

  mutable Mutex mu_;
  Seconds now_ GPTPU_GUARDED_BY(mu_) = 0;
  std::vector<Tenant> tenants_ GPTPU_GUARDED_BY(mu_);
  /// SCFQ virtual clock per QoS class (finish tag of the most recently
  /// dispatched op).
  std::array<double, kNumQosClasses> class_round_ GPTPU_GUARDED_BY(mu_){};
  /// Modelled completion instants of dispatched-but-not-complete ops,
  /// kept as a min-heap (std::push_heap/pop_heap with std::greater).
  std::vector<Seconds> inflight_ GPTPU_GUARDED_BY(mu_);
  std::vector<TicketStatus> tickets_ GPTPU_GUARDED_BY(mu_);
  usize queued_total_ GPTPU_GUARDED_BY(mu_) = 0;
  std::vector<u64> shed_log_ GPTPU_GUARDED_BY(mu_);
  BreakerState breaker_ GPTPU_GUARDED_BY(mu_) = BreakerState::kClosed;
};

}  // namespace gptpu::serving
