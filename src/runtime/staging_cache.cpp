#include "runtime/staging_cache.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/flight_recorder.hpp"
#include "common/metrics.hpp"

namespace gptpu::runtime {

namespace {

/// Wall-domain mirrors of the cache tallies. The counts depend on how
/// worker and stager threads interleave with evictions, so they live
/// outside the deterministic virtual domain even though the names carry
/// no "wall." prefix (metrics_export classifies the "host_cache."
/// prefix explicitly; see docs/OBSERVABILITY.md).
struct HostCacheMetrics {
  metrics::Counter& hits;
  metrics::Counter& misses;
  metrics::Counter& bytes;
  metrics::Counter& evictions;

  static HostCacheMetrics& get() {
    auto& reg = metrics::MetricRegistry::global();
    static HostCacheMetrics m{
        reg.counter("host_cache.hits"),
        reg.counter("host_cache.misses"),
        reg.counter("host_cache.bytes"),
        reg.counter("host_cache.evictions"),
    };
    return m;
  }
};

u64 mix64(u64 h, u64 v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

/// Map/LRU/index node overhead charged per entry so verdict-only entries
/// (no payload bytes) still count against the capacity bound.
constexpr usize kEntryOverhead = 128;

}  // namespace

u64 tile_key(const TileRef& t) {
  u64 h = 0x2545f4914f6cdd1dULL;
  h = mix64(h, t.buffer->id());
  h = mix64(h, t.buffer->version());
  h = mix64(h, t.row0);
  h = mix64(h, t.col0);
  h = mix64(h, t.shape.rows);
  h = mix64(h, t.shape.cols);
  u32 scale_bits;
  static_assert(sizeof(scale_bits) == sizeof(t.scale));
  std::memcpy(&scale_bits, &t.scale, sizeof(scale_bits));
  h = mix64(h, scale_bits);
  h = mix64(h, t.as_model ? 1 : 0);
  return h;
}

StagingCache::TileIdentity StagingCache::identity_of(const TileRef& tile) {
  TileIdentity id;
  id.buffer_id = tile.buffer->id();
  id.version = tile.buffer->version();
  id.row0 = tile.row0;
  id.col0 = tile.col0;
  id.shape = tile.shape;
  std::memcpy(&id.scale_bits, &tile.scale, sizeof(id.scale_bits));
  id.as_model = tile.as_model;
  return id;
}

StagingCache::StagingCache(usize capacity_bytes)
    : capacity_bytes_(capacity_bytes) {
  // Resolve the registry (and the counters) now: the registry's
  // function-local static must complete construction before this cache
  // so it is destroyed after it (same ordering rule as Runtime).
  HostCacheMetrics::get();
}

StagingCache& StagingCache::global() {
  static StagingCache cache(kDefaultCapacityBytes);
  return cache;
}

void StagingCache::charge_and_insert_lru(u64 key, Entry& e) {
  e.charged = kEntryOverhead + (e.payload ? e.payload->bytes() : 0);
  resident_bytes_ += e.charged;
  lru_.push_front(key);
  e.lru_it = lru_.begin();
  e.in_lru = true;
}

void StagingCache::erase_entry(u64 key) {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return;
  Entry& e = it->second;
  if (e.in_lru) {
    lru_.erase(e.lru_it);
    resident_bytes_ -= e.charged;
  }
  if (const auto bit = by_buffer_.find(e.id.buffer_id);
      bit != by_buffer_.end()) {
    auto& keys = bit->second;
    keys.erase(std::remove(keys.begin(), keys.end(), key), keys.end());
    if (keys.empty()) by_buffer_.erase(bit);
  }
  entries_.erase(it);
}

void StagingCache::evict_to_capacity() {
  auto& m = HostCacheMetrics::get();
  while (resident_bytes_ > capacity_bytes_ && !lru_.empty()) {
    erase_entry(lru_.back());
    ++stats_.evictions;
    m.evictions.add(1);
  }
}

StagingCache::PayloadPtr StagingCache::get_or_build(
    u64 key, const TileIdentity& id, const std::function<Payload()>& build,
    u64 trace_id) {
  auto& m = HostCacheMetrics::get();
  bool claimed = false;
  {
    MutexLock lock(mu_);
    for (;;) {
      auto it = entries_.find(key);
      if (it != entries_.end() && !(it->second.id == id)) {
        ++stats_.collisions;
        if (it->second.building) {
          // A build under the colliding identity owns the slot; serve
          // this request uncached rather than disturb it.
          break;
        }
        // The resident entry lost the slot (collision or stale key).
        erase_entry(key);
        it = entries_.end();
      }
      if (it == entries_.end()) {
        Entry& e = entries_[key];
        e.id = id;
        e.building = true;
        by_buffer_[id.buffer_id].push_back(key);
        ++stats_.misses;
        m.misses.add(1);
        claimed = true;
        break;
      }
      Entry& e = it->second;
      if (e.payload) {
        ++stats_.hits;
        m.hits.add(1);
        lru_.splice(lru_.begin(), lru_, e.lru_it);
        return e.payload;
      }
      if (e.building) {
        // Coalesce with the in-flight build, then re-examine: the entry
        // may complete, be doomed, or vanish entirely.
        build_done_.wait(mu_);
        continue;
      }
      // Verdict-only entry: claim it for the payload build. Pull it out
      // of the LRU while building (building entries are never evicted).
      lru_.erase(e.lru_it);
      e.in_lru = false;
      resident_bytes_ -= e.charged;
      e.charged = 0;
      e.building = true;
      ++stats_.misses;
      m.misses.add(1);
      claimed = true;
      break;
    }
  }

  if (!claimed) {
    return std::make_shared<const Payload>(build());
  }

  PayloadPtr result;
  if (trace_id != 0 && flight::armed()) {
    flight::emit({.trace_id = trace_id,
                  .kind = flight::EventKind::kStaged,
                  .wall_only = true});
  }
  try {
    result = std::make_shared<const Payload>(build());
  } catch (...) {
    {
      MutexLock lock(mu_);
      erase_entry(key);
    }
    build_done_.notify_all();
    throw;
  }

  {
    MutexLock lock(mu_);
    const auto it = entries_.find(key);
    GPTPU_CHECK(it != entries_.end() && it->second.building,
                "staging-cache build entry disappeared");
    Entry& e = it->second;
    e.building = false;
    if (e.doomed) {
      // Invalidated mid-build: hand the bytes to the waiters but do not
      // publish them.
      erase_entry(key);
    } else {
      e.payload = result;
      m.bytes.add(result->bytes());
      charge_and_insert_lru(key, e);
      evict_to_capacity();
    }
  }
  build_done_.notify_all();
  return result;
}

std::optional<bool> StagingCache::zero_verdict(u64 key,
                                               const TileIdentity& id) const {
  MutexLock lock(mu_);
  const auto it = entries_.find(key);
  if (it == entries_.end() || !(it->second.id == id)) return std::nullopt;
  return it->second.zero;
}

void StagingCache::store_zero_verdict(u64 key, const TileIdentity& id,
                                      bool zero) {
  MutexLock lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end() && !(it->second.id == id)) {
    ++stats_.collisions;
    if (it->second.building) return;  // don't disturb an in-flight build
    erase_entry(key);
    it = entries_.end();
  }
  if (it == entries_.end()) {
    Entry& e = entries_[key];
    e.id = id;
    e.zero = zero;
    by_buffer_[id.buffer_id].push_back(key);
    charge_and_insert_lru(key, e);
    evict_to_capacity();
    return;
  }
  it->second.zero = zero;
  if (it->second.in_lru) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  }
}

void StagingCache::invalidate_buffer(u64 buffer_id) {
  MutexLock lock(mu_);
  const auto bit = by_buffer_.find(buffer_id);
  if (bit == by_buffer_.end()) return;
  // erase_entry mutates the index vector, so drain a moved-out copy.
  const std::vector<u64> keys = std::move(bit->second);
  by_buffer_.erase(bit);
  for (const u64 key : keys) {
    const auto it = entries_.find(key);
    if (it == entries_.end()) continue;
    if (it->second.building) {
      it->second.doomed = true;
      continue;
    }
    if (it->second.in_lru) {
      lru_.erase(it->second.lru_it);
      resident_bytes_ -= it->second.charged;
    }
    entries_.erase(it);
  }
}

void StagingCache::clear() {
  MutexLock lock(mu_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.building) {
      it->second.doomed = true;
      ++it;
      continue;
    }
    it = entries_.erase(it);
  }
  lru_.clear();
  resident_bytes_ = 0;
  by_buffer_.clear();
  // Re-index the surviving (doomed, in-flight) builds so a concurrent
  // invalidate_buffer still finds them.
  for (const auto& [key, e] : entries_) {
    by_buffer_[e.id.buffer_id].push_back(key);
  }
}

void StagingCache::set_capacity(usize bytes) {
  MutexLock lock(mu_);
  capacity_bytes_ = bytes;
  evict_to_capacity();
}

usize StagingCache::resident_bytes() const {
  MutexLock lock(mu_);
  return resident_bytes_;
}

usize StagingCache::entries() const {
  MutexLock lock(mu_);
  return entries_.size();
}

StagingCache::Stats StagingCache::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

}  // namespace gptpu::runtime
