// The two queue-entry types of the GPTPU runtime (§6.1, Figure 4):
//  * OperationRequest -- an entry of the front-end task operation queue
//    (OPQ): one programmer-requested operator with its buffers and flags;
//  * InstructionPlan -- an entry of the back-end instruction queue (IQ):
//    one Edge TPU instruction over staged tiles, produced by the
//    Tensorizer, plus the host-side routing of its result.
#pragma once

#include <vector>

#include "isa/instruction.hpp"
#include "runtime/buffer.hpp"

namespace gptpu::runtime {

/// One folded-in successor op of a fused chain request (graph-compiler
/// fusion). The stage consumes the previous op's output; pairwise stages
/// bring their own second operand buffer.
struct FusedOpRequest {
  isa::Opcode op = isa::Opcode::kAdd;  // add/sub/mul/tanh/ReLu
  TensorBuffer* operand = nullptr;     // pairwise stages only
  /// The chain intermediate is the *right* operand of this stage (needed
  /// for non-commutative sub); `operand` supplies the left side.
  bool swapped = false;
};

/// An OPQ entry: "a task ID, the requested TPU operation, the input and
/// output locations, and parameters like the quantization method".
struct OperationRequest {
  u64 task_id = 0;
  /// Flight-recorder trace id linking every lifecycle event of this op
  /// (common/flight_recorder.hpp). 0 lets invoke() assign one.
  u64 trace_id = 0;
  isa::Opcode op = isa::Opcode::kAdd;
  TensorBuffer* in0 = nullptr;
  TensorBuffer* in1 = nullptr;  // null for single-input operators
  TensorBuffer* out = nullptr;
  isa::QuantMethod quant = isa::QuantMethod::kScale;

  /// Arithmetic operators emit raw int32 accumulators which the host
  /// dequantizes and aggregates in float -- GPTPU's exact-operation mode
  /// (§10, §6.2.1). Disable to force requantized int8 outputs (ablation;
  /// 4x cheaper to read back, lossy).
  bool exact_arithmetic = true;

  isa::Stride stride{};       // conv2D
  u16 kernel_bank = 1;        // conv2D
  isa::Window window{};       // crop
  Shape2D pad_target{};       // ext

  /// Graph execution extensions (all inert in eager mode):
  /// earliest virtual time this op may start -- a cross-stage dependency
  /// edge from a producing op on another pipeline stage.
  Seconds not_before = 0;
  /// Absolute virtual-time deadline; 0 = none. An op whose deadline has
  /// passed before dispatch (or whose retries would outlive it) fails
  /// with kDeadlineExceeded instead of consuming device time, and a hung
  /// execute's watchdog is clamped to the remaining budget
  /// (docs/SERVING.md).
  Seconds deadline_vt = 0;
  /// Pin every instruction of this op to one device (graph pipeline
  /// stages); -1 keeps the scheduler's free choice.
  int device_pin = -1;
  /// Pin the output buffer's post-op range analytically instead of
  /// recalibrating from produced values. Graph mode pins internal edges so
  /// fused and unfused executions derive identical quantization points
  /// (and skips the host-side recalibration scan).
  bool pin_output_range = false;
  quant::Range pinned_output_range{};
  /// Successor ops folded into this request by the graph compiler's
  /// fusion pass (pairwise/elementwise head only). Lowering emits one
  /// fused instruction per tile instead of one instruction per tile per
  /// op.
  std::vector<FusedOpRequest> fused_ops;
};

/// A rectangular tile of a host buffer that must be staged into device
/// memory, either as a plain quantized tensor or through the model wire
/// format (the second operand of the arithmetic instructions).
struct TileRef {
  const TensorBuffer* buffer = nullptr;
  usize row0 = 0;
  usize col0 = 0;
  Shape2D shape{};
  float scale = 1.0f;
  bool as_model = false;

  [[nodiscard]] bool valid() const { return buffer != nullptr; }
  /// Bytes this tile occupies on-chip (int8) -- also the transfer payload
  /// for plain tensors; models additionally pay the wire envelope.
  [[nodiscard]] usize bytes() const { return shape.elems(); }
};

/// How a plan's device result lands in the host output buffer.
enum class HostCombine : u8 {
  kStore,       // overwrite the destination region
  kAccumulate,  // += (blocked FullyConnected partial products, §6.2.1)
  kMeanPartial, // weighted contribution to a scalar mean
  kMaxPartial,  // running max into a scalar
};

/// An IQ entry.
struct InstructionPlan {
  /// Trace id of the owning op, copied from the OperationRequest so every
  /// lifecycle event downstream of lowering links back to the submission.
  u64 trace_id = 0;
  isa::Opcode op = isa::Opcode::kAdd;
  isa::Stride stride{};
  isa::Window window{};   // device-side crop window (within the staged tile)
  Shape2D pad_target{};   // device-side ext target
  u16 kernel_bank = 1;
  float out_scale = 1.0f;

  /// Wide (int32-accumulator) output; the host dequantizes each value by
  /// `wide_dequant` = 1 / (s_in0 * s_in1).
  bool wide_output = false;
  double wide_dequant = 1.0;

  TileRef in0;
  TileRef in1;

  /// Cache keys of in0/in1 (`tile_key`), computed once at dispatch and
  /// carried along so the scheduler, the stage-ahead thread and the
  /// executing worker all agree on the identity without rehashing.
  /// 0 until invoke() fills them in (and for an invalid in1).
  u64 in0_key = 0;
  u64 in1_key = 0;

  /// sim::KernelRegistry table index, resolved once at dispatch from the
  /// tile shapes and scales and copied onto the emitted isa::Instruction
  /// so Device::execute jumps straight to the pre-selected kernel
  /// variant. 0xffff = unresolved (fused plans, which bypass the
  /// registry); re-resolution on a fault re-dispatch is idempotent.
  u16 kernel_id = 0xffff;

  // Host-side result routing.
  usize out_row0 = 0;
  usize out_col0 = 0;
  Shape2D out_shape{};  // region written in the host output buffer
  HostCombine combine = HostCombine::kStore;
  double combine_weight = 1.0;  // kMeanPartial: fraction of total elements

  /// Fused chain plans (op == kFusedPairwise / kFusedElementwise) only:
  /// the head's base opcode and intermediate scale, plus per-stage scale
  /// plans and operand tiles. Mirrors isa::FusedStage with the host-side
  /// tile identity attached.
  struct FusedStagePlan {
    isa::Opcode op = isa::Opcode::kAdd;
    TileRef operand;       // pairwise stages only
    u64 operand_key = 0;   // staged-tile cache key (filled at dispatch)
    bool swapped = false;
    float in_scale = 1.0f;
    float out_scale = 1.0f;
  };
  isa::Opcode head_op = isa::Opcode::kAdd;
  float head_scale = 1.0f;
  u8 fused_stage_count = 0;
  std::array<FusedStagePlan, isa::kMaxFusedStages> fused_stages{};
};

/// A lowered OPQ entry: the instruction list plus one-time host costs.
struct LoweredOperation {
  std::vector<InstructionPlan> plans;
  /// Modelled host-side preparation charged once before the first
  /// instruction (layout transforms); tile quantization / model creation
  /// is charged per staged tile instead.
  Seconds host_prep_seconds = 0;
  /// True when any plan accumulates, so the output region must be zeroed
  /// before dispatch.
  bool zero_output_first = false;
};

}  // namespace gptpu::runtime
