// gptpu-analyze: deterministic-file -- breakdowns feed byte-compared
// black-box dumps, so iteration order must not depend on hash-map layout.
#include "runtime/op_breakdown.hpp"

#include <algorithm>
#include <map>

#include "common/metrics.hpp"

namespace gptpu::runtime {

namespace {

/// Per-trace accumulator while scanning the (unordered) event stream.
struct OpAccum {
  bool submitted = false;
  Seconds submitted_vt = 0;
  Seconds final_vt = 0;
  Seconds planning = 0;
  Seconds execute = 0;
  Seconds backoff = 0;
  Seconds landing = 0;
  /// plan order -> largest staging transfer seen for that plan.
  std::map<u16, Seconds> stage_max;
  u16 plans = 0;
  u16 retries = 0;
  u16 redispatches = 0;
  u16 fallbacks = 0;
  bool failed = false;
  bool ended = false;
};

struct OpflowMetrics {
  metrics::Counter& ops;
  metrics::Counter& failed;
  metrics::Counter& retries;
  metrics::Counter& redispatches;
  metrics::Counter& fallbacks;
  metrics::Histogram& e2e_vt;
  metrics::Histogram& planning_vt;
  metrics::Histogram& staging_vt;
  metrics::Histogram& execute_vt;
  metrics::Histogram& backoff_vt;
  metrics::Histogram& landing_vt;
  metrics::Histogram& queue_other_vt;

  static OpflowMetrics& get() {
    auto& reg = metrics::MetricRegistry::global();
    static OpflowMetrics m{
        reg.counter("opflow.ops"),
        reg.counter("opflow.failed"),
        reg.counter("opflow.retries"),
        reg.counter("opflow.redispatches"),
        reg.counter("opflow.fallbacks"),
        reg.histogram("opflow.e2e_vt"),
        reg.histogram("opflow.planning_vt"),
        reg.histogram("opflow.staging_vt"),
        reg.histogram("opflow.execute_vt"),
        reg.histogram("opflow.backoff_vt"),
        reg.histogram("opflow.landing_vt"),
        reg.histogram("opflow.queue_other_vt"),
    };
    return m;
  }
};

}  // namespace

std::vector<OpBreakdown> compute_op_breakdowns(
    const std::vector<flight::Event>& events) {
  // std::map: trace ids drive the output order, which must be stable.
  std::map<u64, OpAccum> accums;
  for (const flight::Event& e : events) {
    if (e.trace_id == 0 || e.wall_only) continue;
    OpAccum& a = accums[e.trace_id];
    switch (e.kind) {
      case flight::EventKind::kSubmitted:
        a.submitted = true;
        a.submitted_vt = e.vt;
        break;
      case flight::EventKind::kPlanned:
        a.planning += e.vdur;
        a.plans = e.detail;
        break;
      case flight::EventKind::kQueued:
        break;  // carries the ready instant only; no attributable span
      case flight::EventKind::kStaged: {
        Seconds& m = a.stage_max[e.detail];
        m = std::max(m, e.vdur);
        break;
      }
      case flight::EventKind::kExecuteBegin:
        break;  // the matching kExecuteEnd carries the span
      case flight::EventKind::kExecuteEnd:
        a.execute += e.vdur;
        break;
      case flight::EventKind::kRetried:
        a.backoff += e.vdur;
        ++a.retries;
        break;
      case flight::EventKind::kRedispatched:
        ++a.redispatches;
        break;
      case flight::EventKind::kFellBack:
        ++a.fallbacks;
        break;
      case flight::EventKind::kLanded:
        a.landing += e.vdur;
        a.final_vt = std::max(a.final_vt, e.vt);
        a.ended = true;
        break;
      case flight::EventKind::kFailed:
        a.failed = true;
        a.final_vt = std::max(a.final_vt, e.vt);
        a.ended = true;
        break;
    }
  }

  std::vector<OpBreakdown> out;
  out.reserve(accums.size());
  for (const auto& [trace_id, a] : accums) {
    // A wrap that ate the submission (or an op still in flight) cannot
    // produce a trustworthy e2e; skip rather than fabricate.
    if (!a.submitted || !a.ended) continue;
    OpBreakdown b;
    b.trace_id = trace_id;
    b.submitted_vt = a.submitted_vt;
    b.e2e = a.final_vt - a.submitted_vt;
    b.planning = a.planning;
    for (const auto& [order, dur] : a.stage_max) {
      (void)order;
      b.staging += dur;
    }
    b.execute = a.execute;
    b.backoff = a.backoff;
    b.landing = a.landing;
    b.queue_other =
        b.e2e - b.planning - b.staging - b.execute - b.backoff - b.landing;
    b.plans = a.plans;
    b.retries = a.retries;
    b.redispatches = a.redispatches;
    b.fallbacks = a.fallbacks;
    b.failed = a.failed;
    out.push_back(b);
  }
  return out;
}

void publish_op_breakdown_metrics(const std::vector<OpBreakdown>& breakdowns) {
  auto& m = OpflowMetrics::get();
  for (const OpBreakdown& b : breakdowns) {
    m.ops.add(1);
    if (b.failed) m.failed.add(1);
    m.retries.add(b.retries);
    m.redispatches.add(b.redispatches);
    m.fallbacks.add(b.fallbacks);
    m.e2e_vt.record(b.e2e);
    m.planning_vt.record(b.planning);
    m.staging_vt.record(b.staging);
    m.execute_vt.record(b.execute);
    m.backoff_vt.record(b.backoff);
    m.landing_vt.record(b.landing);
    m.queue_other_vt.record(b.queue_other);
  }
}

}  // namespace gptpu::runtime
