// gptpu-analyze: deterministic-file -- the dump's "virtual" object is
// byte-compared across replays, so nothing here may iterate a hash map.
#include "runtime/blackbox.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <iostream>
#include <tuple>
#include <vector>

#include "common/flight_recorder.hpp"
#include "common/metrics.hpp"
#include "common/thread_annotations.hpp"
#include "runtime/metrics_export.hpp"
#include "runtime/op_breakdown.hpp"

namespace gptpu::runtime::blackbox {

namespace {

struct Trigger {
  std::string reason;
  u32 device = kNoDevice;
  Seconds vt = 0;
};

struct State {
  mutable Mutex mu;
  std::string path GPTPU_GUARDED_BY(mu);
  std::vector<Trigger> triggers GPTPU_GUARDED_BY(mu);
};

State& state() {
  static State s;
  return s;
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

void append_event(std::string& out, const flight::Event& e) {
  out += "{\"trace_id\":" + std::to_string(e.trace_id) + ",\"kind\":\"" +
         flight::kind_name(e.kind) + "\",\"detail\":" +
         std::to_string(e.detail) + ",\"device\":" + std::to_string(e.device) +
         ",\"vt\":" + fmt_metric_double(e.vt) +
         ",\"vdur\":" + fmt_metric_double(e.vdur) + "}";
}

void append_breakdown(std::string& out, const OpBreakdown& b) {
  out += "{\"trace_id\":" + std::to_string(b.trace_id) +
         ",\"submitted_vt\":" + fmt_metric_double(b.submitted_vt) +
         ",\"e2e\":" + fmt_metric_double(b.e2e) +
         ",\"planning\":" + fmt_metric_double(b.planning) +
         ",\"staging\":" + fmt_metric_double(b.staging) +
         ",\"execute\":" + fmt_metric_double(b.execute) +
         ",\"backoff\":" + fmt_metric_double(b.backoff) +
         ",\"landing\":" + fmt_metric_double(b.landing) +
         ",\"queue_other\":" + fmt_metric_double(b.queue_other) +
         ",\"plans\":" + std::to_string(b.plans) +
         ",\"retries\":" + std::to_string(b.retries) +
         ",\"redispatches\":" + std::to_string(b.redispatches) +
         ",\"fallbacks\":" + std::to_string(b.fallbacks) +
         ",\"failed\":" + (b.failed ? "true" : "false") + "}";
}

void append_metric(std::string& out,
                   const metrics::MetricRegistry::SnapshotEntry& e) {
  out += "\"" + escape(e.name) + "\":";
  switch (e.kind) {
    case metrics::MetricRegistry::Kind::kCounter:
      out += std::to_string(e.counter);
      break;
    case metrics::MetricRegistry::Kind::kGauge:
      out += fmt_metric_double(e.gauge);
      break;
    case metrics::MetricRegistry::Kind::kHistogram:
      out += "{\"count\":" + std::to_string(e.hist.count) +
             ",\"sum\":" + fmt_metric_double(e.hist.sum) +
             ",\"p50\":" + fmt_metric_double(e.hist.p50) +
             ",\"p95\":" + fmt_metric_double(e.hist.p95) +
             ",\"p99\":" + fmt_metric_double(e.hist.p99) + "}";
      break;
  }
}

}  // namespace

void set_path(const std::string& path) {
  State& s = state();
  MutexLock lock(s.mu);
  s.path = path;
}

std::string path() {
  State& s = state();
  MutexLock lock(s.mu);
  return s.path;
}

void note_trigger(const std::string& reason, u32 device, Seconds vt) {
  State& s = state();
  MutexLock lock(s.mu);
  s.triggers.push_back(Trigger{reason, device, vt});
}

usize trigger_count() {
  State& s = state();
  MutexLock lock(s.mu);
  return s.triggers.size();
}

std::string dump_json() {
  std::vector<Trigger> triggers;
  {
    State& s = state();
    MutexLock lock(s.mu);
    triggers = s.triggers;
  }
  // Workers may have noted triggers in any order; sort for replay
  // stability (the timestamps and labels themselves are virtual-domain).
  std::sort(triggers.begin(), triggers.end(),
            [](const Trigger& a, const Trigger& b) {
              return std::tie(a.vt, a.device, a.reason) <
                     std::tie(b.vt, b.device, b.reason);
            });

  const std::vector<flight::Event> all = flight::snapshot();
  // The virtual section takes the deterministic (virtual-domain) events
  // only, ordered by their modelled coordinates: per-thread ring order is
  // a wall-clock artifact.
  std::vector<flight::Event> events;
  usize wall_only = 0;
  for (const flight::Event& e : all) {
    if (e.wall_only) {
      ++wall_only;
      continue;
    }
    events.push_back(e);
  }
  std::sort(events.begin(), events.end(),
            [](const flight::Event& a, const flight::Event& b) {
              return std::tie(a.vt, a.trace_id, a.kind, a.device, a.detail,
                              a.vdur) < std::tie(b.vt, b.trace_id, b.kind,
                                                 b.device, b.detail, b.vdur);
            });
  const std::vector<OpBreakdown> breakdowns = compute_op_breakdowns(events);
  const auto metric_entries = metrics::MetricRegistry::global().snapshot();

  std::string out = "{\n  \"virtual\": {\n    \"triggers\": [";
  for (usize i = 0; i < triggers.size(); ++i) {
    if (i != 0) out += ",";
    out += "\n      {\"reason\":\"" + escape(triggers[i].reason) +
           "\",\"device\":" + std::to_string(triggers[i].device) +
           ",\"vt\":" + fmt_metric_double(triggers[i].vt) + "}";
  }
  out += triggers.empty() ? "]" : "\n    ]";

  out += ",\n    \"events\": [";
  for (usize i = 0; i < events.size(); ++i) {
    if (i != 0) out += ",";
    out += "\n      ";
    append_event(out, events[i]);
  }
  out += events.empty() ? "]" : "\n    ]";

  out += ",\n    \"op_breakdowns\": [";
  for (usize i = 0; i < breakdowns.size(); ++i) {
    if (i != 0) out += ",";
    out += "\n      ";
    append_breakdown(out, breakdowns[i]);
  }
  out += breakdowns.empty() ? "]" : "\n    ]";

  out += ",\n    \"metrics\": {";
  bool first = true;
  for (const auto& e : metric_entries) {
    if (is_wall_metric(e.name)) continue;
    out += first ? "\n      " : ",\n      ";
    first = false;
    append_metric(out, e);
  }
  out += first ? "}" : "\n    }";
  out += "\n  }";

  out += ",\n  \"wall\": {\n    \"dropped_events\": " +
         std::to_string(flight::dropped_total()) +
         ",\n    \"wall_only_events\": " + std::to_string(wall_only);
  out += ",\n    \"metrics\": {";
  first = true;
  for (const auto& e : metric_entries) {
    if (!is_wall_metric(e.name)) continue;
    out += first ? "\n      " : ",\n      ";
    first = false;
    append_metric(out, e);
  }
  out += first ? "}" : "\n    }";
  out += "\n  }\n}\n";
  return out;
}

bool write_if_configured() {
  std::string p;
  {
    State& s = state();
    MutexLock lock(s.mu);
    if (s.path.empty() || s.triggers.empty()) return false;
    p = s.path;
  }
  const std::string dump = dump_json();
  errno = 0;
  std::ofstream out(p);
  if (!out) {
    std::cerr << "blackbox: cannot open '" << p
              << "': " << std::strerror(errno) << "\n";
    return false;
  }
  out << dump;
  out.flush();
  if (!out.good()) {
    std::cerr << "blackbox: write to '" << p
              << "' failed: " << std::strerror(errno) << "\n";
    return false;
  }
  return true;
}

void reset() {
  State& s = state();
  MutexLock lock(s.mu);
  s.path.clear();
  s.triggers.clear();
}

}  // namespace gptpu::runtime::blackbox
