// Post-mortem black-box dumps (docs/OBSERVABILITY.md).
//
// When something dies -- a device is declared dead, an operation raises
// OperationFailed -- the runtime notes a *trigger* here. If a dump path
// is configured (gptpu_cli --blackbox-out=PATH), the black box is written
// as JSON: the noted triggers, the flight recorder's buffered lifecycle
// events, the per-op critical-path breakdowns derived from them, and the
// full metric registry.
//
// Like every deterministic export in this repo the dump is split into a
// "virtual" object (modelled-time quantities; byte-stable across replays
// of the same workload + fault seed on a single device) and a "wall"
// object (host-measured; legitimately varies). The flight.smoke ctest
// byte-compares the virtual object across two seeded-fault replays.
//
// Write points: immediately before OperationFailed surfaces (evidence is
// hot and the failed op's workers are quiescent), and at ~Runtime after
// the workers joined (the provably quiescent final flush -- this is the
// copy replay comparisons use). Writes overwrite: the latest dump is the
// most complete one.
#pragma once

#include <string>

#include "common/types.hpp"

namespace gptpu::runtime::blackbox {

/// Trigger device ordinal meaning "no specific device" (mirrors
/// flight::kNoDevice).
inline constexpr u32 kNoDevice = 0xffffffffu;

/// Configures the dump path process-wide ("" disables dumping; triggers
/// are still collected so a later set_path can flush them).
void set_path(const std::string& path);
[[nodiscard]] std::string path();

/// Records one post-mortem trigger. `vt` is the modelled instant of the
/// failure (virtual domain); `reason` should be a stable label like
/// "device-dead:kDeviceLost" or "operation-failed".
void note_trigger(const std::string& reason, u32 device, Seconds vt);

/// Number of triggers noted since the last reset() (tests/CLI).
[[nodiscard]] usize trigger_count();

/// Writes the dump to the configured path when a path is set and at least
/// one trigger was noted; otherwise does nothing. Returns true when a
/// file was written. Safe to call repeatedly (each write overwrites).
bool write_if_configured();

/// The dump itself, regardless of configuration (tests, and the CLI's
/// unconditional end-of-run flush when --blackbox-out is given).
[[nodiscard]] std::string dump_json();

/// Forgets every trigger and the configured path (test isolation).
void reset();

}  // namespace gptpu::runtime::blackbox
