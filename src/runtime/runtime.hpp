// The GPTPU runtime system (§4, §6).
//
// The Runtime receives operations from the OpenCtpu front end (OPQ
// entries), lowers them through the Tensorizer into instructions (IQ
// entries), schedules those onto the simulated Edge TPU pool, and routes
// results -- including the CPU-side aggregation the §6.2.1 rewriting rules
// call for -- back into host buffers.
//
// Execution model:
//  * every simulated device is driven by a dedicated worker thread that
//    owns it exclusively (staging, execution, read-back);
//  * invoke() blocks until the operation's functional results are in the
//    host output buffer and its modelled completion time is known, exactly
//    like openctpu_invoke_operator inside a kernel function (§6.1);
//  * operations of one task serialize in virtual time; distinct tasks
//    overlap freely (§5: "tasks can perform out of order in parallel").
//
// Wall-clock work is real (quantization, instruction payloads,
// aggregation); latency and energy are modelled (DESIGN.md §5.2).
#pragma once

#include <atomic>
#include <deque>
#include <functional>
#include <list>
#include <memory>
#include <thread>
#include <unordered_map>

#include "common/domain_annotations.hpp"
#include "common/status.hpp"
#include "common/thread_annotations.hpp"
#include "common/timeline.hpp"
#include "runtime/buffer.hpp"
#include "runtime/energy.hpp"
#include "runtime/operation.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/staging_cache.hpp"
#include "runtime/tensorizer.hpp"
#include "sim/device_pool.hpp"
#include "sim/fault_injector.hpp"

namespace gptpu::runtime {

struct RuntimeConfig {
  usize num_devices = 1;
  /// false = timing-only mode: no data is materialized or computed.
  bool functional = true;
  /// Which TPU variant the pool models (Edge on PCIe by default; Edge on
  /// USB and a Cloud-TPU-class device are available for comparison).
  sim::DeviceProfile profile = sim::kEdgeTpuPcie;
  Tensorizer::Config tensorizer{};
  /// §6.1 affinity scheduling; off = pure FCFS (ablation).
  bool affinity = true;
  /// Keep staged input tiles resident for reuse (§6.1's data-movement
  /// saving). Off = stateless streaming: every instruction re-transfers
  /// its inputs (ablation baseline).
  bool input_cache = true;
  /// Charge Tensorizer model creation on the host resource so it overlaps
  /// device transfers (§6.2.3); off serializes it before each transfer
  /// (ablation).
  bool overlap_model_creation = true;
  /// Tensorizer zero-tile elision: a multiplicative instruction (mul,
  /// conv2D, FullyConnected) whose input tile is entirely zero produces a
  /// zero tile, so the runtime skips the transfer and the instruction and
  /// writes zeros host-side. This is the Tensorizer's dynamic-evaluation
  /// idea (§6.2) applied to sparsity: block-sparse inputs (graphs, banded
  /// matrices) shed their empty tiles. Functional mode only -- the check
  /// needs data.
  bool skip_zero_tiles = true;
  /// Two-stage wall-clock pipeline per device: a stage-ahead thread
  /// pre-quantizes / pre-serializes host bytes for queued plans into a
  /// small ring of staging slots while the worker drains earlier plans
  /// (the wall-clock realization of the §6.2.3 overlap the virtual model
  /// already charges). Wall-clock placement only -- the modelled virtual
  /// timeline is byte-identical on or off. Functional mode only; off =
  /// strictly serial staging (ablation / determinism baseline).
  bool stage_pipeline = true;
  /// Stage-ahead ring depth (2 = double buffering, 3 = triple); clamped
  /// to [2, 8].
  usize stage_slots = 3;
  /// Memoize quantized tile bytes / serialized model blobs in the
  /// process-wide StagingCache, so iterative and multi-device runs stop
  /// re-paying host preparation for unchanged buffers. Wall-clock only;
  /// off = always rebuild (ablation).
  bool host_staging_cache = true;
  /// Deterministic fault injection (docs/FAULT_TOLERANCE.md). An empty
  /// spec falls back to sim::FaultInjector::process_default() (how the
  /// gptpu_cli --faults flag reaches app-constructed runtimes); if that is
  /// empty too, no injector is built and every device boundary costs one
  /// null-pointer branch.
  sim::FaultConfig faults{};
  /// Fault-watchdog timeout in virtual seconds; overrides the active
  /// FaultConfig's watchdog_vt (including a process-default one) when
  /// positive. 0 keeps the spec's own value (FaultConfig default 0.25).
  /// Per-op the effective watchdog is additionally clamped to the op's
  /// remaining deadline (docs/SERVING.md).
  Seconds watchdog_vt = 0;
  /// How the runtime reacts to injected (or, on real hardware, observed)
  /// device faults; see docs/FAULT_TOLERANCE.md for the state machine.
  struct FaultPolicy {
    /// Same-device attempts for a transient fault before the device is
    /// declared dead (total tries = 1 + max_retries).
    u32 max_retries = 3;
    /// First retry waits this much virtual time; each further retry
    /// multiplies it by backoff_multiplier.
    Seconds backoff_base_vt = 5e-4;
    double backoff_multiplier = 4.0;
    /// Degrade to the kernels::reference CPU path when no device can run
    /// a plan. Off: Runtime::invoke throws OperationFailed instead.
    bool cpu_fallback = true;
    /// Modelled CPU-vs-TPU slowdown charged for a fallback instruction.
    double cpu_slowdown = 25.0;
  } fault_policy{};
};

/// One OPQ log entry, kept for introspection, tests and ablations.
struct OpRecord {
  u64 task_id = 0;
  isa::Opcode op{};
  usize num_instructions = 0;
  Seconds virtual_start = 0;
  Seconds virtual_done = 0;
  /// kOk unless the operation failed permanently (every placement
  /// exhausted, CPU fallback disabled) -- the error-reporting contract
  /// openctpu_wait/openctpu_sync document.
  StatusCode status = StatusCode::kOk;
};

/// Per-device health as seen by the fault-tolerance layer: kHealthy until
/// the first transient fault, kDegraded while retries succeed, kDead after
/// a fatal fault or exhausted retries (terminal until reset()).
enum class DeviceHealth : u8 { kHealthy = 0, kDegraded = 1, kDead = 2 };

/// One fault-layer event for the Chrome trace ("i" instant events on the
/// virtual timeline): injected faults, retries, device deaths,
/// re-dispatches, CPU fallbacks.
struct FaultTraceEvent {
  Seconds at = 0;
  usize device = 0;  // pool index; npos-like max for host-level events
  std::string label;
};

class Runtime {
 public:
  explicit Runtime(const RuntimeConfig& config);
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  // --- buffers ------------------------------------------------------------

  /// Wraps caller-owned host data (must outlive the buffer).
  TensorBuffer* create_buffer(Shape2D shape, float* host);
  /// Timing-only descriptor buffer with a synthetic value range.
  TensorBuffer* create_virtual_buffer(Shape2D shape, quant::Range range);

  /// Releases a buffer record (library kernels create temporaries, e.g.
  /// the reshaped operands of the conv2D GEMM). Device-cache entries keyed
  /// on the buffer's id/version stay valid but unreachable and age out via
  /// LRU. The buffer must not be referenced by in-flight operations.
  void destroy_buffer(TensorBuffer* buffer);

  // --- tasks and operations -------------------------------------------------

  /// Allocates a task ID (openctpu_enqueue). Operations carrying the same
  /// task ID serialize in virtual time.
  u64 begin_task() GPTPU_EXCLUDES(tasks_mu_);

  /// Executes one operation synchronously (OPQ -> Tensorizer -> IQ ->
  /// devices -> host aggregation). Throws on invalid requests. Returns
  /// the operation's modelled completion instant (== the value
  /// task_ready(request.task_id) advances to), which graph executors use
  /// as the cross-stage not_before edge.
  GPTPU_VIRTUAL_DOMAIN
  Seconds invoke(const OperationRequest& request);

  /// Modelled completion time of the last operation of `task`.
  GPTPU_VIRTUAL_DOMAIN
  [[nodiscard]] Seconds task_ready(u64 task_id) const
      GPTPU_EXCLUDES(tasks_mu_);

  /// Charges host-side work (e.g. the conv2D-GEMM layout transform) to the
  /// task's virtual timeline and the host resource.
  GPTPU_VIRTUAL_DOMAIN
  void charge_host(u64 task_id, Seconds duration, const char* label);

  // --- results --------------------------------------------------------------

  /// Modelled end-to-end latency: when every device and the host are idle.
  GPTPU_VIRTUAL_DOMAIN
  [[nodiscard]] Seconds makespan() const;
  [[nodiscard]] EnergyReport energy() const;
  /// Snapshot of the OPQ log. A copy: producer threads may be appending
  /// concurrently.
  [[nodiscard]] std::vector<OpRecord> opq_log() const GPTPU_EXCLUDES(opq_mu_) {
    MutexLock lock(opq_mu_);
    return opq_;
  }

  [[nodiscard]] sim::DevicePool& pool() { return pool_; }
  [[nodiscard]] const RuntimeConfig& config() const { return config_; }
  [[nodiscard]] const Tensorizer& tensorizer() const { return tensorizer_; }

  /// Health of one device (atomic snapshot; safe while work is in flight).
  [[nodiscard]] DeviceHealth device_health(usize device) const;
  /// Devices the scheduler still assigns to.
  [[nodiscard]] usize alive_devices() const {
    return scheduler_.alive_count();
  }
  /// Snapshot of the fault-event log, sorted by (time, device, label) so
  /// concurrent workers' appends export deterministically.
  [[nodiscard]] std::vector<FaultTraceEvent> fault_trace() const
      GPTPU_EXCLUDES(fault_mu_);

  /// Cache statistics (affinity effectiveness; used by tests/ablation).
  struct CacheStats {
    u64 hits = 0;
    u64 misses = 0;
    u64 evictions = 0;
    u64 zero_tiles_skipped = 0;
  };
  [[nodiscard]] CacheStats cache_stats() const;

  /// Enables interval recording on every modelled resource (device
  /// compute units, links, host lanes, the global host) for trace export.
  void set_tracing(bool on);

  /// Visits every modelled resource with a stable track name; used by the
  /// trace exporter. Must only run while no work is in flight.
  void visit_resources(
      const std::function<void(const std::string& track,
                               const VirtualResource&)>& fn) const;

  /// Clears clocks, caches and the OPQ log; buffers survive.
  void reset();

 private:
  struct OpContext;
  struct WorkItem {
    InstructionPlan plan;
    OpContext* ctx = nullptr;
    /// Position in this device's IQ (assigned at dispatch under the
    /// device mutex); indexes the staging-slot ring.
    u64 seq = 0;
    /// Position of the plan in its operation's dispatch order; keeps
    /// fault re-dispatch deterministic (failures are re-issued in this
    /// order, not in worker completion order).
    usize order = 0;
    /// Devices this plan has already been tried on (0 = first dispatch);
    /// bounds re-dispatch at config_.num_devices placements.
    u32 attempts = 0;
    /// Pre-built host bytes handed over from the stage-ahead thread's
    /// slot at pop time (null = stage inline as before).
    StagingCache::PayloadPtr hint0;
    StagingCache::PayloadPtr hint1;
  };
  /// What the stage-ahead thread needs to prepare one queued plan: a
  /// self-contained copy, so it never dereferences the executor's queue.
  struct StageRequest {
    u64 seq = 0;
    TileRef in0;
    TileRef in1;
    u64 in0_key = 0;
    u64 in1_key = 0;
    isa::Opcode op{};
    /// Bit 0 / bit 1 set when in0 / in1 is worth preparing (the
    /// scheduler believed it NOT resident on the device at dispatch).
    u8 stage_mask = 0;
    /// The operation's output buffer id: tiles aliasing it are skipped
    /// (the stager must never read memory a landing may be writing).
    u64 out_buffer_id = 0;
    /// Flight-recorder lifecycle id of the owning operation (0 = untraced);
    /// stamps the wall-only kStaged event a cache build emits.
    u64 trace_id = 0;
    OpContext* ctx = nullptr;
  };
  struct DeviceState;

  void worker_loop(usize device_index);
  void stager_loop(usize device_index);
  /// Prepares one stage request: zero-verdict precompute plus payload
  /// builds through the staging cache, parked in the slot ring.
  void stage_ahead(DeviceState& ds, const StageRequest& req);
  /// One attempt at a plan on a device. Non-OK statuses are fault or
  /// capacity reports, never injected-fault exceptions: device boundaries
  /// return Result (lint rule R7).
  GPTPU_VIRTUAL_DOMAIN
  Status try_execute_plan(DeviceState& ds, const WorkItem& item,
                          Seconds ready);
  /// try_execute_plan plus the fault-tolerance policy: retry/backoff on
  /// transient faults, device death on fatal ones. A non-OK return means
  /// this device cannot run the plan (invoke() re-dispatches or falls
  /// back; kResourceExhausted is structural and surfaces unchanged).
  GPTPU_VIRTUAL_DOMAIN
  Status run_plan_with_retries(DeviceState& ds, const WorkItem& item);
  /// Declares a device dead: health gauge, scheduler exclusion, worker
  /// cache bookkeeping teardown. Runs on the owning worker thread.
  void kill_device(DeviceState& ds, StatusCode code, Seconds at);
  /// Runs one plan on the host via kernels::reference -- same quantized
  /// inputs, bit-exact kernels, same landing math as the device path, so
  /// results match a fault-free device run exactly.
  void cpu_fallback_plan(OpContext& ctx, const InstructionPlan& plan,
                         usize order);
  /// Shared result landing (kStore/kAccumulate/kMeanPartial/kMaxPartial)
  /// for the device readback path and the CPU fallback path.
  void land_result(OpContext& ctx, const InstructionPlan& plan,
                   Shape2D out_shape, const i8* narrow, const i32* wide);
  /// Assigns one plan to an alive device (primary dispatch or fault
  /// re-dispatch) and enqueues its work item + stage request. Returns the
  /// scheduler's queue-wait estimate.
  GPTPU_VIRTUAL_DOMAIN
  Seconds dispatch_plan(OpContext& ctx, const InstructionPlan& plan,
                        usize order, u32 attempts);
  void record_fault_event(usize device, Seconds at, std::string label)
      GPTPU_EXCLUDES(fault_mu_);
  /// Host bytes for a tile: staging-cache lookup (memoized across
  /// devices and iterations) or a direct build when the cache is off.
  StagingCache::PayloadPtr staged_payload(const TileRef& tile, u64 key,
                                          u64 trace_id);
  /// Zero-tile scan with the verdict memoized per tile_key.
  bool tile_is_zero_cached(const TileRef& tile, u64 key);
  /// Publishes end-of-life gauges (resource busy times, makespan, affinity
  /// hit rate) and folds the per-device cache counters into the global
  /// metrics registry. Runs after the workers joined, so every published
  /// value is a settled virtual-time quantity.
  void publish_final_metrics();
  GPTPU_VIRTUAL_DOMAIN
  Result<isa::DeviceTensorId> stage_tile(DeviceState& ds, const TileRef& tile,
                                         u64 key, StagingCache::PayloadPtr hint,
                                         Seconds ready, Seconds* available_at,
                                         u64 trace_id, u16 plan_order);
  GPTPU_VIRTUAL_DOMAIN
  Status ensure_device_space(DeviceState& ds, usize bytes,
                             std::span<const u64> pinned_keys);
  GPTPU_VIRTUAL_DOMAIN
  Seconds acquire_host(Seconds ready, Seconds duration, const char* label);

  RuntimeConfig config_;
  sim::DevicePool pool_;
  Tensorizer tensorizer_;

  /// Built when config_.faults (or the process default) has a spec;
  /// attached to every device before workers start. Null otherwise.
  std::unique_ptr<sim::FaultInjector> fault_injector_;
  mutable Mutex fault_mu_;
  std::vector<FaultTraceEvent> fault_events_ GPTPU_GUARDED_BY(fault_mu_);

  /// Internally synchronized (see scheduler.hpp): producers assign() while
  /// workers drop_tile() on eviction.
  Scheduler scheduler_;

  /// Internally synchronized, like every VirtualResource.
  VirtualResource host_{"host"};

  mutable Mutex tasks_mu_;
  std::unordered_map<u64, Seconds> task_ready_ GPTPU_GUARDED_BY(tasks_mu_);
  u64 next_task_ GPTPU_GUARDED_BY(tasks_mu_) = 1;

  Mutex buffers_mu_;
  std::vector<std::unique_ptr<TensorBuffer>> buffers_
      GPTPU_GUARDED_BY(buffers_mu_);

  mutable Mutex opq_mu_;
  std::vector<OpRecord> opq_ GPTPU_GUARDED_BY(opq_mu_);

  std::vector<std::unique_ptr<DeviceState>> device_states_;
  std::vector<std::thread> workers_;
  /// One stage-ahead thread per device (empty when the pipeline is off
  /// or the runtime is timing-only).
  std::vector<std::thread> stagers_;
  /// config_.stage_pipeline && config_.functional, resolved once.
  bool stager_enabled_ = false;
  /// Operations currently inside invoke() (the OPQ in-flight depth). Feeds
  /// a wall-domain high-water gauge: the value depends on how caller
  /// threads interleave.
  std::atomic<u64> opq_inflight_{0};
  /// Shutdown flag. Atomic because each worker re-checks it under its own
  /// device mutex while the destructor sets it once for all of them.
  std::atomic<bool> stopping_{false};
};

}  // namespace gptpu::runtime
