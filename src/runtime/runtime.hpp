// The GPTPU runtime system (§4, §6).
//
// The Runtime receives operations from the OpenCtpu front end (OPQ
// entries), lowers them through the Tensorizer into instructions (IQ
// entries), schedules those onto the simulated Edge TPU pool, and routes
// results -- including the CPU-side aggregation the §6.2.1 rewriting rules
// call for -- back into host buffers.
//
// Execution model:
//  * every simulated device is driven by a dedicated worker thread that
//    owns it exclusively (staging, execution, read-back);
//  * invoke() blocks until the operation's functional results are in the
//    host output buffer and its modelled completion time is known, exactly
//    like openctpu_invoke_operator inside a kernel function (§6.1);
//  * operations of one task serialize in virtual time; distinct tasks
//    overlap freely (§5: "tasks can perform out of order in parallel").
//
// Wall-clock work is real (quantization, instruction payloads,
// aggregation); latency and energy are modelled (DESIGN.md §5.2).
#pragma once

#include <atomic>
#include <deque>
#include <functional>
#include <list>
#include <memory>
#include <thread>
#include <unordered_map>

#include "common/thread_annotations.hpp"
#include "common/timeline.hpp"
#include "runtime/buffer.hpp"
#include "runtime/energy.hpp"
#include "runtime/operation.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/tensorizer.hpp"
#include "sim/device_pool.hpp"

namespace gptpu::runtime {

struct RuntimeConfig {
  usize num_devices = 1;
  /// false = timing-only mode: no data is materialized or computed.
  bool functional = true;
  /// Which TPU variant the pool models (Edge on PCIe by default; Edge on
  /// USB and a Cloud-TPU-class device are available for comparison).
  sim::DeviceProfile profile = sim::kEdgeTpuPcie;
  Tensorizer::Config tensorizer{};
  /// §6.1 affinity scheduling; off = pure FCFS (ablation).
  bool affinity = true;
  /// Keep staged input tiles resident for reuse (§6.1's data-movement
  /// saving). Off = stateless streaming: every instruction re-transfers
  /// its inputs (ablation baseline).
  bool input_cache = true;
  /// Charge Tensorizer model creation on the host resource so it overlaps
  /// device transfers (§6.2.3); off serializes it before each transfer
  /// (ablation).
  bool overlap_model_creation = true;
  /// Tensorizer zero-tile elision: a multiplicative instruction (mul,
  /// conv2D, FullyConnected) whose input tile is entirely zero produces a
  /// zero tile, so the runtime skips the transfer and the instruction and
  /// writes zeros host-side. This is the Tensorizer's dynamic-evaluation
  /// idea (§6.2) applied to sparsity: block-sparse inputs (graphs, banded
  /// matrices) shed their empty tiles. Functional mode only -- the check
  /// needs data.
  bool skip_zero_tiles = true;
};

/// One OPQ log entry, kept for introspection, tests and ablations.
struct OpRecord {
  u64 task_id = 0;
  isa::Opcode op{};
  usize num_instructions = 0;
  Seconds virtual_start = 0;
  Seconds virtual_done = 0;
};

class Runtime {
 public:
  explicit Runtime(const RuntimeConfig& config);
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  // --- buffers ------------------------------------------------------------

  /// Wraps caller-owned host data (must outlive the buffer).
  TensorBuffer* create_buffer(Shape2D shape, float* host);
  /// Timing-only descriptor buffer with a synthetic value range.
  TensorBuffer* create_virtual_buffer(Shape2D shape, quant::Range range);

  /// Releases a buffer record (library kernels create temporaries, e.g.
  /// the reshaped operands of the conv2D GEMM). Device-cache entries keyed
  /// on the buffer's id/version stay valid but unreachable and age out via
  /// LRU. The buffer must not be referenced by in-flight operations.
  void destroy_buffer(TensorBuffer* buffer);

  // --- tasks and operations -------------------------------------------------

  /// Allocates a task ID (openctpu_enqueue). Operations carrying the same
  /// task ID serialize in virtual time.
  u64 begin_task() GPTPU_EXCLUDES(tasks_mu_);

  /// Executes one operation synchronously (OPQ -> Tensorizer -> IQ ->
  /// devices -> host aggregation). Throws on invalid requests.
  void invoke(const OperationRequest& request);

  /// Modelled completion time of the last operation of `task`.
  [[nodiscard]] Seconds task_ready(u64 task_id) const
      GPTPU_EXCLUDES(tasks_mu_);

  /// Charges host-side work (e.g. the conv2D-GEMM layout transform) to the
  /// task's virtual timeline and the host resource.
  void charge_host(u64 task_id, Seconds duration, const char* label);

  // --- results --------------------------------------------------------------

  /// Modelled end-to-end latency: when every device and the host are idle.
  [[nodiscard]] Seconds makespan() const;
  [[nodiscard]] EnergyReport energy() const;
  /// Snapshot of the OPQ log. A copy: producer threads may be appending
  /// concurrently.
  [[nodiscard]] std::vector<OpRecord> opq_log() const GPTPU_EXCLUDES(opq_mu_) {
    MutexLock lock(opq_mu_);
    return opq_;
  }

  [[nodiscard]] sim::DevicePool& pool() { return pool_; }
  [[nodiscard]] const RuntimeConfig& config() const { return config_; }
  [[nodiscard]] const Tensorizer& tensorizer() const { return tensorizer_; }

  /// Cache statistics (affinity effectiveness; used by tests/ablation).
  struct CacheStats {
    u64 hits = 0;
    u64 misses = 0;
    u64 evictions = 0;
    u64 zero_tiles_skipped = 0;
  };
  [[nodiscard]] CacheStats cache_stats() const;

  /// Enables interval recording on every modelled resource (device
  /// compute units, links, host lanes, the global host) for trace export.
  void set_tracing(bool on);

  /// Visits every modelled resource with a stable track name; used by the
  /// trace exporter. Must only run while no work is in flight.
  void visit_resources(
      const std::function<void(const std::string& track,
                               const VirtualResource&)>& fn) const;

  /// Clears clocks, caches and the OPQ log; buffers survive.
  void reset();

 private:
  struct OpContext;
  struct WorkItem {
    InstructionPlan plan;
    OpContext* ctx = nullptr;
  };
  struct DeviceState;

  void worker_loop(usize device_index);
  void execute_plan(DeviceState& ds, const WorkItem& item);
  /// Publishes end-of-life gauges (resource busy times, makespan, affinity
  /// hit rate) and folds the per-device cache counters into the global
  /// metrics registry. Runs after the workers joined, so every published
  /// value is a settled virtual-time quantity.
  void publish_final_metrics();
  isa::DeviceTensorId stage_tile(DeviceState& ds, const TileRef& tile,
                                 Seconds ready, Seconds* available_at);
  void ensure_device_space(DeviceState& ds, usize bytes,
                           std::span<const u64> pinned_keys);
  Seconds acquire_host(Seconds ready, Seconds duration, const char* label);

  RuntimeConfig config_;
  sim::DevicePool pool_;
  Tensorizer tensorizer_;

  /// Internally synchronized (see scheduler.hpp): producers assign() while
  /// workers drop_tile() on eviction.
  Scheduler scheduler_;

  /// Internally synchronized, like every VirtualResource.
  VirtualResource host_{"host"};

  mutable Mutex tasks_mu_;
  std::unordered_map<u64, Seconds> task_ready_ GPTPU_GUARDED_BY(tasks_mu_);
  u64 next_task_ GPTPU_GUARDED_BY(tasks_mu_) = 1;

  Mutex buffers_mu_;
  std::vector<std::unique_ptr<TensorBuffer>> buffers_
      GPTPU_GUARDED_BY(buffers_mu_);

  mutable Mutex opq_mu_;
  std::vector<OpRecord> opq_ GPTPU_GUARDED_BY(opq_mu_);

  std::vector<std::unique_ptr<DeviceState>> device_states_;
  std::vector<std::thread> workers_;
  /// Operations currently inside invoke() (the OPQ in-flight depth). Feeds
  /// a wall-domain high-water gauge: the value depends on how caller
  /// threads interleave.
  std::atomic<u64> opq_inflight_{0};
  /// Shutdown flag. Atomic because each worker re-checks it under its own
  /// device mutex while the destructor sets it once for all of them.
  std::atomic<bool> stopping_{false};
};

}  // namespace gptpu::runtime
