// gptpu-analyze: deterministic-file -- recorded edges feed the graph
// compiler, whose output must not depend on hash-map layout (R10).
#include "runtime/op_graph.hpp"

#include <algorithm>

namespace gptpu::runtime {

namespace {
void push_unique_sorted(std::vector<usize>& v, usize x) {
  const auto it = std::lower_bound(v.begin(), v.end(), x);
  if (it == v.end() || *it != x) v.insert(it, x);
}
}  // namespace

usize OpGraph::add(const OperationRequest& req) {
  GPTPU_CHECK(req.in0 != nullptr && req.out != nullptr,
              "recorded operation needs in0 and out");
  GPTPU_CHECK(req.fused_ops.empty() && req.device_pin < 0 &&
                  !req.pin_output_range && req.not_before == 0,
              "recorded requests must not carry graph-execution fields");
  const usize id = nodes_.size();
  OpNode node;
  node.id = id;
  node.req = req;

  const auto read = [&](const TensorBuffer* buf) {
    const u64 bid = buf->id();
    // RAW: depend on the last writer; register as its consumer.
    if (const auto it = last_writer_.find(bid); it != last_writer_.end()) {
      push_unique_sorted(node.deps, it->second);
      push_unique_sorted(nodes_[it->second].consumers, id);
    }
    readers_since_write_[bid].push_back(id);
  };
  read(req.in0);
  if (req.in1 != nullptr) read(req.in1);

  const u64 out_id = req.out->id();
  // WAR: everyone who read the old contents must finish first.
  if (const auto it = readers_since_write_.find(out_id);
      it != readers_since_write_.end()) {
    for (const usize r : it->second) {
      if (r != id) push_unique_sorted(node.deps, r);
    }
    it->second.clear();
  }
  // WAW: the previous writer must land before this one overwrites.
  if (const auto it = last_writer_.find(out_id); it != last_writer_.end()) {
    push_unique_sorted(node.deps, it->second);
  }
  last_writer_[out_id] = id;

  nodes_.push_back(std::move(node));
  return id;
}

void OpGraph::mark_output(const TensorBuffer* buffer) {
  GPTPU_CHECK(buffer != nullptr, "mark_output: null buffer");
  const auto it = std::lower_bound(output_ids_.begin(), output_ids_.end(),
                                   buffer->id());
  if (it == output_ids_.end() || *it != buffer->id()) {
    output_ids_.insert(it, buffer->id());
  }
}

bool OpGraph::is_output(const TensorBuffer* buffer) const {
  return std::binary_search(output_ids_.begin(), output_ids_.end(),
                            buffer->id());
}

usize OpGraph::producer_of(u64 buffer_id) const {
  const auto it = last_writer_.find(buffer_id);
  return it == last_writer_.end() ? kNoProducer : it->second;
}

}  // namespace gptpu::runtime
