// Host-side tensor buffers -- what an openctpu_buffer wraps.
//
// A TensorBuffer couples raw host data (float, row-major) with the value
// range the Tensorizer's calibration derived for it. In timing-only mode
// (DESIGN.md §6) `data` stays empty and the buffer carries only shape +
// synthetic range, which is all the timing model needs.
#pragma once

#include <atomic>
#include <memory>

#include "common/matrix.hpp"
#include "quant/quantize.hpp"

namespace gptpu::runtime {

class TensorBuffer {
 public:
  /// Functional buffer over caller-owned storage. `host` must stay alive
  /// for the buffer's lifetime and hold shape.elems() floats. The range is
  /// calibrated immediately (sampled for large data).
  TensorBuffer(Shape2D shape, float* host);

  /// Timing-only descriptor: no data, a synthetic range.
  TensorBuffer(Shape2D shape, quant::Range range);

  /// Drops this buffer's host staging-cache entries (see
  /// runtime/staging_cache.hpp): cached quantized bytes must not outlive
  /// the buffer identity they are keyed on.
  ~TensorBuffer();

  TensorBuffer(const TensorBuffer&) = delete;
  TensorBuffer& operator=(const TensorBuffer&) = delete;

  [[nodiscard]] u64 id() const { return id_; }
  [[nodiscard]] Shape2D shape() const { return shape_; }
  [[nodiscard]] bool functional() const { return host_ != nullptr; }
  [[nodiscard]] quant::Range range() const { return range_; }
  void set_range(quant::Range r) { range_ = r; }

  [[nodiscard]] MatrixView<float> view() {
    GPTPU_CHECK(host_ != nullptr, "view() on a timing-only buffer");
    return {host_, shape_};
  }
  [[nodiscard]] MatrixView<const float> view() const {
    GPTPU_CHECK(host_ != nullptr, "view() on a timing-only buffer");
    return {host_, shape_};
  }

  /// Re-runs range calibration (an output buffer reused as an input must
  /// refresh its range first; invoke_operator does this automatically).
  void recalibrate();

  /// Version counter, bumped whenever the buffer is written as an
  /// operation output; part of the device-cache key so stale tiles are
  /// never reused (§6.1's affinity rule only applies to identical inputs).
  [[nodiscard]] u64 version() const { return version_; }
  /// Also invalidates the buffer's host staging-cache entries, so the
  /// memoized quantized bytes can never be served for rewritten data.
  void bump_version();

 private:
  static u64 next_id();

  u64 id_;
  Shape2D shape_;
  float* host_ = nullptr;
  quant::Range range_{};
  u64 version_ = 0;
};

}  // namespace gptpu::runtime
