// Process-wide host staging cache (the wall-clock companion of §6.1).
//
// Staging a tile costs real host time twice over: quantizing the float
// rectangle to int8 and, for model-kind operands, serializing the wire
// blob (§6.2.3). The *virtual* cost of that work is modelled on the
// per-device host lanes, but the wall-clock cost used to be re-paid on
// every device-cache miss -- so iterative apps (PageRank, HotSpot3D,
// Backprop epochs) and multi-device runs re-quantized identical bytes
// every iteration / on every device. This cache memoizes the produced
// host bytes keyed by the same `tile_key` the device caches and the
// scheduler use (buffer id + write version + rectangle + scale + staging
// kind), so an unchanged buffer is quantized once per process, not once
// per (device x iteration).
//
// Wall-clock only: the cache hands back bytes, never virtual timestamps.
// Every VirtualResource / Device acquire happens in the runtime exactly
// as before, so the modelled timeline is byte-identical with the cache
// on or off (asserted by tests/test_staging_pipeline.cpp).
//
// Concurrency: one mutex guards the map + LRU; builds run *outside* the
// lock with per-entry coalescing (concurrent requests for the same key
// wait on the builder instead of duplicating the work). Payloads are
// handed out as shared_ptr<const Payload>, so eviction and invalidation
// never pull bytes out from under a reader. `bump_version` / buffer
// destruction invalidate by buffer id via a secondary index.
//
// The 64-bit key is a hash; each entry stores the full TileIdentity and
// verifies it on lookup. A mismatch (hash collision or a version bump
// racing a stale key) bypasses the cache rather than serving wrong bytes.
#pragma once

#include <functional>
#include <list>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.hpp"
#include "runtime/operation.hpp"

namespace gptpu::runtime {

/// Cache identity of a staged tile: buffer (and its write version), the
/// rectangle, quantization scale and staging kind. Two plans whose tiles
/// agree on all of these can share the resident copy (§6.1). Used by the
/// device caches, the scheduler's residency map and the staging cache.
[[nodiscard]] u64 tile_key(const TileRef& tile);

class StagingCache {
 public:
  /// The host bytes staging produces: the quantized int8 rectangle
  /// (plain operands) or the serialized model wire blob (model-kind
  /// operands keep only the blob -- that is what load_model consumes).
  struct Payload {
    std::vector<i8> tensor;
    std::vector<u8> model;
    [[nodiscard]] usize bytes() const {
      return tensor.capacity() * sizeof(i8) + model.capacity() * sizeof(u8);
    }
  };
  using PayloadPtr = std::shared_ptr<const Payload>;

  /// The exact fields `tile_key` hashes, kept verbatim so a lookup can
  /// prove the 64-bit key did not collide.
  struct TileIdentity {
    u64 buffer_id = 0;
    u64 version = 0;
    usize row0 = 0;
    usize col0 = 0;
    Shape2D shape{};
    u32 scale_bits = 0;
    bool as_model = false;

    [[nodiscard]] bool operator==(const TileIdentity&) const = default;
  };
  [[nodiscard]] static TileIdentity identity_of(const TileRef& tile);

  explicit StagingCache(usize capacity_bytes);

  StagingCache(const StagingCache&) = delete;
  StagingCache& operator=(const StagingCache&) = delete;

  /// The process-wide instance every Runtime shares (default capacity
  /// kDefaultCapacityBytes). Constructed on first use; TensorBuffer's
  /// constructor touches it so it outlives any buffer whose destructor
  /// needs to invalidate.
  static StagingCache& global();

  /// Returns the payload for `key`, building it via `build` on a miss.
  /// Concurrent callers for the same key coalesce: one builds, the rest
  /// wait. An identity mismatch on a resident entry (hash collision, or
  /// the buffer was re-versioned under a stale key) builds and returns
  /// without caching. `build` runs with no cache lock held. A nonzero
  /// `trace_id` emits a wall-only kStaged flight event when the build
  /// actually runs (cache hits are free and stay silent); wall-only
  /// because which caller of a coalesced build pays is host-timing
  /// dependent, so the event must not feed the deterministic sections.
  [[nodiscard]] PayloadPtr get_or_build(u64 key, const TileIdentity& id,
                                        const std::function<Payload()>& build,
                                        u64 trace_id = 0)
      GPTPU_EXCLUDES(mu_);

  /// Memoized zero-tile verdicts ride in the same entries: the runtime's
  /// §6.2 zero-tile elision scans each multiplicative operand tile, and
  /// the verdict is as version-stable as the payload bytes.
  [[nodiscard]] std::optional<bool> zero_verdict(u64 key,
                                                 const TileIdentity& id) const
      GPTPU_EXCLUDES(mu_);
  void store_zero_verdict(u64 key, const TileIdentity& id, bool zero)
      GPTPU_EXCLUDES(mu_);

  /// Drops every entry of `buffer_id` (any version / rectangle). Called
  /// from TensorBuffer::bump_version and its destructor, so stale bytes
  /// are unreachable the moment a buffer is rewritten or freed. Entries
  /// mid-build are doomed instead: the builder's result is returned to
  /// its waiters but not cached.
  void invalidate_buffer(u64 buffer_id) GPTPU_EXCLUDES(mu_);

  /// Drops everything (doomed builds excepted, as above).
  void clear() GPTPU_EXCLUDES(mu_);

  void set_capacity(usize bytes) GPTPU_EXCLUDES(mu_);

  [[nodiscard]] usize resident_bytes() const GPTPU_EXCLUDES(mu_);
  [[nodiscard]] usize entries() const GPTPU_EXCLUDES(mu_);

  /// Per-instance tallies (tests); the process-wide host_cache.* metric
  /// counters mirror the global() instance.
  struct Stats {
    u64 hits = 0;
    u64 misses = 0;
    u64 evictions = 0;
    u64 collisions = 0;
  };
  [[nodiscard]] Stats stats() const GPTPU_EXCLUDES(mu_);

  static constexpr usize kDefaultCapacityBytes = usize{128} << 20;

 private:
  struct Entry {
    TileIdentity id{};
    PayloadPtr payload;
    std::optional<bool> zero;
    /// A build is in flight for this entry; it is not in the LRU and
    /// invalidation must doom it rather than erase it (the builder holds
    /// a reference across the unlocked build).
    bool building = false;
    /// Invalidated while building: discard the result instead of caching.
    bool doomed = false;
    /// Bytes charged against capacity_ (payload + entry overhead).
    usize charged = 0;
    std::list<u64>::iterator lru_it{};
    bool in_lru = false;
  };

  void charge_and_insert_lru(u64 key, Entry& e) GPTPU_REQUIRES(mu_);
  void erase_entry(u64 key) GPTPU_REQUIRES(mu_);
  void evict_to_capacity() GPTPU_REQUIRES(mu_);

  mutable Mutex mu_;
  CondVar build_done_;
  usize capacity_bytes_ GPTPU_GUARDED_BY(mu_);
  usize resident_bytes_ GPTPU_GUARDED_BY(mu_) = 0;
  std::unordered_map<u64, Entry> entries_ GPTPU_GUARDED_BY(mu_);
  std::list<u64> lru_ GPTPU_GUARDED_BY(mu_);  // front = most recently used
  /// buffer id -> keys of its entries, for O(entries-of-buffer)
  /// invalidation on bump_version.
  std::unordered_map<u64, std::vector<u64>> by_buffer_ GPTPU_GUARDED_BY(mu_);
  Stats stats_ GPTPU_GUARDED_BY(mu_);
};

}  // namespace gptpu::runtime
