// Graph capture (record mode) for the graph-level Tensorizer.
//
// Eager GPTPU executes one OperationRequest at a time: the Tensorizer
// sees a single operator and its buffers, so cross-operator structure
// (an elementwise chain feeding one consumer, a layer pipeline spread
// over devices) is invisible to it. An OpGraph captures that structure:
// requests are *recorded* instead of executed, and buffer producer /
// consumer relationships become explicit dataflow edges. The
// GraphCompiler (graph_compiler.hpp) then runs graph-level rewrites --
// operator fusion, profiled pipeline partitioning -- that the eager
// queue cannot express.
//
// Edge semantics: node B depends on node A when B reads a buffer A wrote
// (RAW), overwrites a buffer A read (WAR), or overwrites a buffer A
// wrote (WAW). `consumers` tracks RAW readers only -- that is the
// relation fusion legality cares about.
#pragma once

#include <map>
#include <vector>

#include "runtime/operation.hpp"

namespace gptpu::runtime {

/// One recorded operation plus its dataflow edges.
struct OpNode {
  usize id = 0;
  /// The captured request. Graph-execution fields (task_id, not_before,
  /// device_pin, pin_output_range, fused_ops) are filled in by the
  /// compiler / executor, never by the recorder.
  OperationRequest req;
  /// Nodes that must complete before this one (RAW + WAR + WAW),
  /// deduplicated, ascending.
  std::vector<usize> deps;
  /// Nodes that read this node's output buffer (RAW), ascending.
  std::vector<usize> consumers;
};

class OpGraph {
 public:
  static constexpr usize kNoProducer = ~usize{0};

  /// Records one operation and wires its dependency edges. Returns the
  /// node id. The request must be a plain eager-style request (no graph
  /// fields set); buffers must outlive the graph.
  usize add(const OperationRequest& req);

  /// Declares a buffer as a graph output: the host reads it after the
  /// graph runs, so the fusion pass must materialize it even when it has
  /// a single in-graph consumer. Buffers never consumed inside the graph
  /// are outputs implicitly.
  void mark_output(const TensorBuffer* buffer);

  [[nodiscard]] const std::vector<OpNode>& nodes() const { return nodes_; }
  [[nodiscard]] bool empty() const { return nodes_.empty(); }
  [[nodiscard]] usize size() const { return nodes_.size(); }

  /// True when the buffer was explicitly marked as read by the host.
  [[nodiscard]] bool is_output(const TensorBuffer* buffer) const;

  /// Node that last writes this buffer, or kNoProducer.
  [[nodiscard]] usize producer_of(u64 buffer_id) const;

 private:
  std::vector<OpNode> nodes_;
  std::vector<u64> output_ids_;  // sorted unique buffer ids
  // Ordered maps: recording happens on one thread and iteration order
  // feeds the deterministic compiler (docs/ANALYSIS.md R10).
  std::map<u64, usize> last_writer_;
  std::map<u64, std::vector<usize>> readers_since_write_;
};

}  // namespace gptpu::runtime
