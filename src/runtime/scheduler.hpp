// Instruction scheduling (§6.1).
//
// The runtime schedules an IQ entry to the same Edge TPU when it shares
// input tiles (and quantization flags and task) with data already resident
// there -- avoiding re-transfers and re-quantization -- and otherwise
// assigns first-come-first-serve to the device that will become available
// earliest (tracked as an estimated-load clock per device, so the decision
// is deterministic at dispatch time).
//
// The scheduler is internally synchronized: dispatching producer threads
// call assign() while device workers call drop_tile() on eviction, so the
// load clocks and the residency map are guarded by one mutex and the
// guarantee is compiler-checked via the clang thread-safety annotations
// (docs/ANALYSIS.md).
#pragma once

#include <span>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/domain_annotations.hpp"
#include "common/thread_annotations.hpp"
#include "common/types.hpp"
#include "perfmodel/machine_constants.hpp"

namespace gptpu::runtime {

class Scheduler {
 public:
  /// A tile an instruction needs on-device: its cache key and size. The
  /// size weights the affinity decision -- re-transferring a large model
  /// costs more than a small vector.
  using TileNeed = std::pair<u64, usize>;

  Scheduler(usize num_devices, bool affinity_enabled);

  /// What assign() decided, with enough detail for the metrics layer:
  /// which device, how long the plan is expected to sit behind that
  /// device's backlog, and how many input bytes were already resident
  /// there (the §6.1 re-transfer the affinity rule just avoided).
  struct Assignment {
    usize device = 0;
    /// Estimated virtual time the plan waits for the device to free up
    /// (max(0, backlog - ready) at decision time).
    Seconds queue_wait = 0;
    /// Input bytes already resident on the chosen device.
    usize resident_bytes = 0;
    /// Bit i set when tiles[i] was believed resident on the chosen device
    /// at decision time. The stage-ahead pipeline reads this as its IQ
    /// lookahead: a resident tile will hit the device cache, so
    /// pre-quantizing its bytes would be wasted wall-clock work. Advisory
    /// only -- a worker-side eviction can invalidate it, in which case
    /// the executor stages inline as before.
    u32 resident_mask = 0;
  };

  /// Picks the device for a plan that becomes ready at `ready` (virtual
  /// time), needs `tiles` resident, and runs for about `instr_seconds`
  /// once they are. Chooses the earliest *estimated finish*: each
  /// device's estimate charges transfer time only for tiles not already
  /// resident there, which is exactly the §6.1 affinity rule (resident
  /// inputs make a device finish sooner) generalized to also balance the
  /// pool. With affinity disabled, every device is charged the full
  /// transfer (pure FCFS). Records the tiles as resident on the choice
  /// and feeds the scheduler.* metrics. A nonzero `trace_id` emits a
  /// kQueued flight event for the chosen device (the event carries only
  /// the deterministic ready instant: the backlog estimate observes
  /// concurrent worker-side evictions, so it stays out of the virtual
  /// fields).
  GPTPU_VIRTUAL_DOMAIN
  [[nodiscard]] Assignment assign_detailed(std::span<const TileNeed> tiles,
                                           Seconds instr_seconds,
                                           Seconds ready, u64 trace_id = 0,
                                           u16 plan_order = 0)
      GPTPU_EXCLUDES(mu_);

  /// assign_detailed() reduced to the chosen device id.
  GPTPU_VIRTUAL_DOMAIN
  [[nodiscard]] usize assign(std::span<const TileNeed> tiles,
                             Seconds instr_seconds, Seconds ready)
      GPTPU_EXCLUDES(mu_) {
    return assign_detailed(tiles, instr_seconds, ready).device;
  }

  /// assign_detailed() with the device choice forced to `device` (a graph
  /// pipeline stage pinned there by the partitioner). Performs the same
  /// load-clock and residency bookkeeping so pinned and free assignments
  /// observe one consistent affinity state; throws if the device is dead.
  GPTPU_VIRTUAL_DOMAIN
  [[nodiscard]] Assignment assign_pinned(usize device,
                                         std::span<const TileNeed> tiles,
                                         Seconds instr_seconds, Seconds ready,
                                         u64 trace_id = 0, u16 plan_order = 0)
      GPTPU_EXCLUDES(mu_);

  /// Fraction of affinity-eligible assignments (plans with at least one
  /// input tile, affinity enabled) that found bytes resident on the
  /// chosen device. 0 when nothing was eligible.
  [[nodiscard]] double affinity_hit_rate() const GPTPU_EXCLUDES(mu_);

  /// Forgets a tile (evicted from a device's memory).
  void drop_tile(usize device, u64 key) GPTPU_EXCLUDES(mu_);

  /// Declares a device dead: it receives no further assignments and all
  /// of its residency entries are forgotten (a lost device's resident
  /// tensors and affinity history are gone with it). Idempotent; called by
  /// the runtime's fault-tolerance layer (docs/FAULT_TOLERANCE.md).
  void mark_dead(usize device) GPTPU_EXCLUDES(mu_);

  [[nodiscard]] bool is_alive(usize device) const GPTPU_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return !dead_.at(device);
  }
  [[nodiscard]] usize alive_count() const GPTPU_EXCLUDES(mu_);

  [[nodiscard]] usize num_devices() const { return num_devices_; }
  GPTPU_VIRTUAL_DOMAIN
  [[nodiscard]] Seconds estimated_load(usize device) const
      GPTPU_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return load_.at(device);
  }

  void reset() GPTPU_EXCLUDES(mu_);

 private:
  const bool affinity_enabled_;
  const usize num_devices_;
  mutable Mutex mu_;
  /// Estimated virtual instant each device finishes its assigned backlog.
  std::vector<Seconds> load_ GPTPU_GUARDED_BY(mu_);
  /// Devices declared dead by mark_dead(); excluded from assignment.
  /// std::vector<char>, not <bool>: the packed specialization has no
  /// addressable elements for at().
  std::vector<char> dead_ GPTPU_GUARDED_BY(mu_);
  /// tile cache key -> devices believed to hold it.
  std::unordered_map<u64, std::unordered_set<usize>> residency_
      GPTPU_GUARDED_BY(mu_);
  /// Affinity-eligible assignments whose chosen device held input bytes.
  u64 affinity_hits_ GPTPU_GUARDED_BY(mu_) = 0;
  /// Affinity-eligible assignments that found nothing resident.
  u64 affinity_misses_ GPTPU_GUARDED_BY(mu_) = 0;
};

}  // namespace gptpu::runtime
