// Tensorizer (§6.2): dynamic lowering of programmer-requested operations
// into Edge TPU instructions on their optimal data shapes, plus
// quantization planning.
//
// Rewriting rules implemented (§6.2.1):
//  * pair-wise and element-wise operators: split into optimal-shape
//    (128x128) sub-matrix instructions at corresponding positions;
//  * matrix-wise operators (mean, max): 64x64 sub-matrix instructions plus
//    CPU code that aggregates the per-tile partial results;
//  * arithmetic operators (FullyConnected, conv2D): the blocking algorithm
//    for matrix multiplication -- P x Q sub-matrix instructions with CPU
//    aggregation of partial products in wider-than-8-bit precision;
//  * layout operators (crop, ext): row-banded to fit on-chip memory.
//
// Scaling factors follow §6.2.2 (quant::output_scale).
#pragma once

#include "runtime/operation.hpp"
#include "sim/timing_model.hpp"

namespace gptpu::runtime {

class Tensorizer {
 public:
  struct Config {
    usize device_memory_bytes = perfmodel::kEdgeTpuMemoryBytes;
    /// Fraction of device memory one instruction's working set (inputs +
    /// output) may occupy; the rest is headroom for cached input tiles of
    /// other instructions (§6.1 affinity).
    double working_set_fraction = 0.80;
    /// Optimal tile edge for pair-wise/element-wise instructions. The
    /// hardware computes on 128x128x8-bit sub-matrices (§3.3).
    usize pairwise_tile = 128;
    /// Optimal tile edge for matrix-wise reductions (§6.2.1).
    usize reduce_tile = 64;
    /// When false, lowering emits whole-matrix instructions limited only
    /// by memory (the naive lowering; used by the ablation benchmark).
    bool use_optimal_tiling = true;
  };

  Tensorizer() : Tensorizer(Config{}) {}
  explicit Tensorizer(Config config);

  /// Lowers one OPQ entry into IQ entries. Pure with respect to device
  /// state; throws InvalidArgument for inconsistent requests and
  /// ResourceExhausted when a single irreducible operand (e.g. one conv2D
  /// kernel bank entry) cannot fit on-chip. Requests carrying fused_ops
  /// (graph-compiler fusion) lower to one fused instruction per tile.
  [[nodiscard]] LoweredOperation lower(const OperationRequest& req) const;

  [[nodiscard]] const Config& config() const { return config_; }

  /// Output scale lower() will choose for a shape-preserving pairwise /
  /// elementwise op over operands of the given ranges. Shared by the
  /// unfused lowering, the fused-chain lowering, and the graph compiler's
  /// pinned-range derivation — one source of truth for the quantization
  /// points fusion must preserve.
  [[nodiscard]] static float planned_out_scale(isa::QuantMethod quant,
                                               isa::Opcode op, quant::Range r0,
                                               quant::Range r1);

  /// Analytic post-op value range of an int8 output produced at
  /// `out_scale`: every code dequantizes into [-127/s, +127/s]. The same
  /// formula Runtime::invoke applies to non-recalibrated outputs, so
  /// pinning an intermediate buffer to this range reproduces the scale
  /// chain the fused lowering derives at compile time.
  [[nodiscard]] static quant::Range pinned_range(float out_scale);

 private:
  [[nodiscard]] usize budget_bytes() const;

  LoweredOperation lower_fused_chain(const OperationRequest& req) const;
  LoweredOperation lower_pairwise(const OperationRequest& req) const;
  LoweredOperation lower_elementwise(const OperationRequest& req) const;
  LoweredOperation lower_matrixwise(const OperationRequest& req) const;
  LoweredOperation lower_fully_connected(const OperationRequest& req) const;
  LoweredOperation lower_conv2d(const OperationRequest& req) const;
  LoweredOperation lower_crop(const OperationRequest& req) const;
  LoweredOperation lower_ext(const OperationRequest& req) const;

  Config config_;
};

}  // namespace gptpu::runtime
