#include "runtime/buffer.hpp"

#include "runtime/staging_cache.hpp"

namespace gptpu::runtime {

namespace {
/// Calibration samples at most ~64K elements (§6.2.2 cites [70]: a small
/// input subset is representative).
usize calibration_stride(usize elems) {
  constexpr usize kTargetSamples = 1 << 16;
  return elems <= kTargetSamples ? 1 : elems / kTargetSamples;
}
}  // namespace

u64 TensorBuffer::next_id() {
  static std::atomic<u64> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

TensorBuffer::TensorBuffer(Shape2D shape, float* host)
    : id_(next_id()), shape_(shape), host_(host) {
  GPTPU_CHECK(host != nullptr, "null host pointer");
  GPTPU_CHECK(shape.elems() > 0, "empty buffer");
  // Construct the process-wide staging cache before this buffer exists,
  // so a static-duration buffer's destructor can still invalidate into a
  // live cache (function-local statics destroy in reverse order).
  StagingCache::global();
  recalibrate();
}

TensorBuffer::TensorBuffer(Shape2D shape, quant::Range range)
    : id_(next_id()), shape_(shape), range_(range) {
  GPTPU_CHECK(shape.elems() > 0, "empty buffer");
  StagingCache::global();
}

TensorBuffer::~TensorBuffer() {
  StagingCache::global().invalidate_buffer(id_);
}

void TensorBuffer::bump_version() {
  StagingCache::global().invalidate_buffer(id_);
  ++version_;
}

void TensorBuffer::recalibrate() {
  if (host_ == nullptr) return;
  const std::span<const float> data{host_, shape_.elems()};
  range_ = quant::calibrate(data, calibration_stride(shape_.elems()));
}

}  // namespace gptpu::runtime
