// gptpu-analyze: deterministic-file -- output and dispatch order
// here must be independent of hash-map layout (docs/ANALYSIS.md R10).
#include "runtime/metrics_export.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "common/metrics.hpp"

namespace gptpu::runtime {

namespace {
using metrics::MetricRegistry;
}  // namespace

/// Fixed numeric formatting so identical values always print identically
/// (std::ostream formatting is locale- and state-dependent; snprintf with
/// a fixed format is not).
std::string fmt_metric_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

bool is_wall_metric(const std::string& name) {
  // "host_cache.*" counts how worker/stager threads race device-cache
  // misses against the process-wide staging cache, so it is wall-clock
  // nondeterministic despite the unprefixed name (the names are part of
  // the staging-cache contract; see docs/OBSERVABILITY.md).
  return name.rfind("wall.", 0) == 0 || name.rfind("host_cache.", 0) == 0;
}

namespace {

void append_json_value(std::string& out, const MetricRegistry::SnapshotEntry& e) {
  switch (e.kind) {
    case MetricRegistry::Kind::kCounter:
      out += std::to_string(e.counter);
      break;
    case MetricRegistry::Kind::kGauge:
      out += fmt_metric_double(e.gauge);
      break;
    case MetricRegistry::Kind::kHistogram:
      out += "{\"count\":" + std::to_string(e.hist.count) +
             ",\"sum\":" + fmt_metric_double(e.hist.sum) +
             ",\"min\":" + fmt_metric_double(e.hist.min) +
             ",\"max\":" + fmt_metric_double(e.hist.max) +
             ",\"p50\":" + fmt_metric_double(e.hist.p50) +
             ",\"p95\":" + fmt_metric_double(e.hist.p95) +
             ",\"p99\":" + fmt_metric_double(e.hist.p99) + "}";
      break;
  }
}

void append_json_object(std::string& out,
                        const std::vector<MetricRegistry::SnapshotEntry>& entries,
                        bool wall) {
  out += "{";
  bool first = true;
  for (const auto& e : entries) {
    if (is_wall_metric(e.name) != wall) continue;
    if (!first) out += ",";
    first = false;
    out += "\n    \"" + e.name + "\": ";
    append_json_value(out, e);
  }
  out += first ? "}" : "\n  }";
}

/// Prometheus metric names allow [a-zA-Z0-9_:]; everything else becomes
/// an underscore.
std::string prom_name(const std::string& name) {
  std::string out = "gptpu_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

std::string metrics_snapshot_json(const metrics::MetricRegistry& reg) {
  const auto entries = reg.snapshot();
  // Registry snapshots are name-sorted; "virtual" holds every metric
  // derived from modelled time or deterministic counts, "wall" the
  // host-measured ones. Only "virtual" is expected to be byte-stable.
  std::string out = "{\n  \"virtual\": ";
  append_json_object(out, entries, /*wall=*/false);
  out += ",\n  \"wall\": ";
  append_json_object(out, entries, /*wall=*/true);
  out += "\n}\n";
  return out;
}

std::string metrics_snapshot_json() {
  return metrics_snapshot_json(MetricRegistry::global());
}

std::string metrics_prometheus_text(const metrics::MetricRegistry& reg) {
  const auto entries = reg.snapshot();
  std::ostringstream os;
  for (const auto& e : entries) {
    const std::string name = prom_name(e.name);
    os << "# HELP " << name << " GPTPU metric '" << e.name
       << "' (docs/OBSERVABILITY.md)\n";
    switch (e.kind) {
      case MetricRegistry::Kind::kCounter:
        os << "# TYPE " << name << " counter\n"
           << name << " " << e.counter << "\n";
        break;
      case MetricRegistry::Kind::kGauge:
        os << "# TYPE " << name << " gauge\n"
           << name << " " << fmt_metric_double(e.gauge) << "\n";
        break;
      case MetricRegistry::Kind::kHistogram: {
        // Native Prometheus histogram: cumulative buckets over the
        // occupied log-spaced edges, closed by the mandatory le="+Inf"
        // series that equals _count.
        os << "# TYPE " << name << " histogram\n";
        u64 cumulative = 0;
        for (const auto& b : e.hist.buckets) {
          cumulative += b.count;
          if (std::isinf(b.upper)) continue;  // folded into le="+Inf"
          os << name << "_bucket{le=\"" << fmt_metric_double(b.upper) << "\"} "
             << cumulative << "\n";
        }
        os << name << "_bucket{le=\"+Inf\"} " << e.hist.count << "\n"
           << name << "_sum " << fmt_metric_double(e.hist.sum) << "\n"
           << name << "_count " << e.hist.count << "\n";
        break;
      }
    }
  }
  return os.str();
}

std::string metrics_prometheus_text() {
  return metrics_prometheus_text(MetricRegistry::global());
}

namespace {
bool write_text_file(const std::string& path, const std::string& text,
                     const char* what) {
  errno = 0;
  std::ofstream out(path);
  if (!out) {
    std::cerr << what << ": cannot open '" << path
              << "': " << std::strerror(errno) << "\n";
    return false;
  }
  out << text;
  out.flush();
  if (!out.good()) {
    std::cerr << what << ": write to '" << path
              << "' failed: " << std::strerror(errno) << "\n";
    return false;
  }
  return true;
}
}  // namespace

bool write_metrics_json_file(const std::string& path) {
  return write_text_file(path, metrics_snapshot_json(), "metrics export");
}

bool write_metrics_prometheus_file(const std::string& path) {
  return write_text_file(path, metrics_prometheus_text(), "metrics export");
}

}  // namespace gptpu::runtime
