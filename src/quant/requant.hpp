// Shared requantization: integer accumulator -> int8 output.
//
// Two pieces live here so every clamp/NaN decision exists exactly once:
//
//  * saturate_i8(): the common tail of quant::quantize_value and
//    sim::kernels::requantize -- map NaN to 0 (float->int conversion of
//    NaN is UB), clamp to [-127, 127].
//
//  * Requant: a per-tile precomputed fixed-point multiplier for turning
//    int32/int64 accumulators into int8 outputs without touching floating
//    point per element. A plan folds the whole dequant * out_scale chain
//    into one rational factor mult / 2^47; apply() is branch-free integer
//    arithmetic (clamp, multiply, shift, round half to even), so the
//    compiler can vectorize requantization loops, and it is NaN-free by
//    construction. Both the fast kernel engine and the kernels::reference
//    oracle call the same apply(), which is what makes the bit-exactness
//    property tests hold by construction.
#pragma once

#include <cmath>

#include "common/types.hpp"

namespace gptpu::quant {

/// NaN -> 0, then clamp to [-127, 127] and narrow. The only permitted way
/// to turn a rounded floating-point quantity into an int8 code.
[[nodiscard]] inline i8 saturate_i8(double q) {
  if (std::isnan(q)) return 0;
  if (q < -127.0) return -127;
  if (q > 127.0) return 127;
  return static_cast<i8>(q);
}

/// Shift of the fixed-point requantization grid: factors are represented
/// as mult / 2^47, which keeps ~14 significant decimal digits for every
/// factor the scale rules produce while a presaturated 64-bit product can
/// never overflow.
inline constexpr int kRequantShift = 47;

/// Rounds a 47-bit fixed-point value to the nearest integer (ties to
/// even, matching std::nearbyint) and saturates into int8. The shared
/// tail of Requant::apply and the pairwise two-multiplier path.
///
/// Half-to-even is computed with the bias form (add half-1 plus the
/// floor's parity bit, then arithmetic-shift) rather than separate
/// rem>half / rem==half compares: the two are identical for every
/// |pr| < 2^62 (callers bound |pr| below 2^62 by presaturation or by the
/// 127.5 factor cap), and only the bias form is something GCC can
/// vectorize -- the compare-and-or form leaves every requantization loop
/// scalar.
[[nodiscard]] inline i8 round_fixed47_to_i8(i64 pr) {
  const i64 odd = (pr >> kRequantShift) & 1;
  const i64 half = i64{1} << (kRequantShift - 1);
  const i64 q = (pr + half - 1 + odd) >> kRequantShift;
  return static_cast<i8>(q < -127 ? -127 : (q > 127 ? 127 : q));
}

/// Fixed-point requantization plan: out = round_half_even(acc * factor)
/// saturated to [-127, 127], computed as (acc * mult) >> 47 with exact
/// integer rounding. `presat` bounds the accumulator before the multiply
/// so the 64-bit product cannot overflow for any factor (see plan()).
struct Requant {
  static constexpr int kShift = kRequantShift;

  i64 mult = 0;
  i64 presat = 0;          // |acc| is clamped to presat before multiplying
  bool saturate_all = false;  // factor so large every nonzero acc saturates

  /// Builds the plan for `factor` (the product of dequantization and
  /// output scales). Non-finite or non-positive factors yield the
  /// all-zero plan, matching a zero output scale. Factors above 127.5
  /// saturate every nonzero accumulator, so no multiplier is needed.
  [[nodiscard]] static Requant plan(double factor) {
    Requant p;
    if (!(factor > 0.0) || !std::isfinite(factor)) return p;  // all zeros
    if (factor > 127.5) {
      p.saturate_all = true;
      return p;
    }
    // Beyond 129 / factor the result saturates either way, so clamping
    // there first loses nothing and bounds |acc * mult| below
    // 384 * 2^47 < 2^56: the product can never overflow.
    const double ps = std::ceil(129.0 / factor) + 1.0;
    p.presat = ps > 9.0e15 ? static_cast<i64>(9.0e15) : static_cast<i64>(ps);
    p.mult = std::llround(std::ldexp(factor, kShift));
    return p;
  }

  /// Requantizes one accumulator. Small enough to inline into kernel
  /// loops, where the loop-invariant branches hoist and the rest
  /// auto-vectorizes.
  [[nodiscard]] i8 apply(i64 acc) const {
    if (saturate_all) {
      return acc > 0 ? i8{127} : (acc < 0 ? i8{-127} : i8{0});
    }
    const i64 a = acc < -presat ? -presat : (acc > presat ? presat : acc);
    return round_fixed47_to_i8(a * mult);
  }

  /// apply() without the presaturation clamp. Only valid when the caller
  /// proves |acc| <= presat for every accumulator (e.g. a conv2d whose
  /// krows * kcols * 127^2 bound fits); kernels use it to shave the two
  /// clamp operations off their hottest requantization loops.
  [[nodiscard]] i8 apply_unsaturated(i64 acc) const {
    return round_fixed47_to_i8(acc * mult);
  }

  /// True when apply_unsaturated() is safe for accumulators bounded by
  /// `max_abs_acc`.
  [[nodiscard]] bool covers(i64 max_abs_acc) const {
    return !saturate_all && max_abs_acc <= presat;
  }
};

}  // namespace gptpu::quant
