// int8 quantization and the §6.2.2 scaling-factor rules.
//
// The Edge TPU matrix unit computes on 8-bit integers. GPTPU's Tensorizer
// rescales raw values into fixed point: q = round(raw * scale), clamped to
// [-127, 127], and derives *output* scaling factors from the operator
// sequence and the input value range so that results cannot overflow
// (Eq. 4-8 of the paper).
#pragma once

#include <span>
#include <vector>

#include "common/matrix.hpp"
#include "common/types.hpp"
#include "isa/opcode.hpp"

namespace gptpu::quant {

inline constexpr float kQuantLimit = 127.0f;

/// Observed value range of a dataset.
struct Range {
  float min = 0.0f;
  float max = 0.0f;

  [[nodiscard]] float magnitude() const;  // max(|min|, |max|)
  [[nodiscard]] float width() const;      // |max - min|
  bool operator==(const Range&) const = default;
};

/// Scans a dataset for its range. `sample_stride` > 1 samples every k-th
/// element: the paper notes a small subset of input data is representative
/// for large datasets [70]; the stride keeps the (modelled-free) host cost
/// of calibration low. The scanned extrema are widened by the sampling
/// uncertainty only in the trivial sense of including element 0 and the
/// last element.
[[nodiscard]] Range calibrate(std::span<const float> data,
                              usize sample_stride = 1);

/// Scale that maps raw values of `range` onto the int8 grid:
/// 127 / magnitude. A degenerate (all-zero) range yields scale 1.
[[nodiscard]] float input_scale(Range range);

/// The §6.2.2 output scaling factor for `op`, multiplied by 127 to address
/// the full int8 output range:
///   conv2D / FullyConnected (Eq. 5): S = 1 / (width^2 * N)
///   add / sub (Eq. 6):               S = 1 / (2 * width)
///   mul (Eq. 7):                     S = 1 / width^2
///   others (Eq. 8):                  S = 1 / width
/// `inner_n` is the reduction length N for the arithmetic operators (the
/// expected maximum output magnitude grows linearly with it) and is
/// ignored otherwise. The combined range spans both operands.
[[nodiscard]] float output_scale(isa::Opcode op, Range in0, Range in1,
                                 usize inner_n);

/// Tighter output scales for the kMinMax quantization method: instead of
/// Eq. 4-8's worst-case width bounds, use the operands' magnitudes
/// (pairwise ops) or a caller-sampled output range (arithmetic ops; the
/// Tensorizer "dynamically evaluates input data" and §6.2.2 cites
/// sampling [70]). Tight scales spend the 8-bit grid on the values that
/// actually occur, at the cost of clipping rare outliers.
[[nodiscard]] float output_scale_minmax(isa::Opcode op, Range in0, Range in1,
                                        usize inner_n);

/// Scale derived from a sampled output range with `headroom` (>1) slack
/// against clipping unsampled extremes.
[[nodiscard]] float sampled_scale(Range sampled_outputs,
                                  float headroom = 1.25f);

/// q = clamp(round(raw * scale), -127, 127).
[[nodiscard]] i8 quantize_value(float raw, float scale);

/// Quantizes a whole span.
void quantize(std::span<const float> raw, float scale, std::span<i8> out);
[[nodiscard]] std::vector<i8> quantize(std::span<const float> raw,
                                       float scale);

/// raw = q / scale.
void dequantize(std::span<const i8> q, float scale, std::span<float> out);
[[nodiscard]] std::vector<float> dequantize(std::span<const i8> q,
                                            float scale);

/// Worst-case absolute quantization error for values quantized with
/// `scale`: half a quantization step. Used by property tests.
[[nodiscard]] inline float max_quant_error(float scale) {
  return 0.5f / scale;
}

/// Feeds one end-to-end quantization-error observation (a MAPE fraction
/// against a float reference) into the global "quant.mape" histogram, so
/// the Table 4/5 error distributions are visible in every metrics export.
/// Call whenever a reference is available (apps::compare does).
void record_mape(double mape_fraction);

}  // namespace gptpu::quant
