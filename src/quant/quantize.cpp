#include "quant/quantize.hpp"

#include <algorithm>
#include <cmath>

#include "common/metrics.hpp"
#include "quant/requant.hpp"

namespace gptpu::quant {

void record_mape(double mape_fraction) {
  static metrics::Histogram& hist =
      metrics::MetricRegistry::global().histogram("quant.mape");
  hist.record(mape_fraction);
}

float Range::magnitude() const { return std::max(std::abs(min), std::abs(max)); }
float Range::width() const { return std::abs(max - min); }

Range calibrate(std::span<const float> data, usize sample_stride) {
  GPTPU_CHECK(sample_stride >= 1, "sample_stride must be >= 1");
  if (data.empty()) return {};
  Range r{data[0], data[0]};
  for (usize i = 0; i < data.size(); i += sample_stride) {
    r.min = std::min(r.min, data[i]);
    r.max = std::max(r.max, data[i]);
  }
  // Always include the final element so a strided scan cannot miss a
  // trailing extremum entirely.
  r.min = std::min(r.min, data.back());
  r.max = std::max(r.max, data.back());
  return r;
}

float input_scale(Range range) {
  const float mag = range.magnitude();
  if (mag == 0.0f) return 1.0f;
  return kQuantLimit / mag;
}

float output_scale(isa::Opcode op, Range in0, Range in1, usize inner_n) {
  const Range joint{std::min(in0.min, in1.min), std::max(in0.max, in1.max)};
  const float width = std::max(joint.width(), joint.magnitude());
  if (width == 0.0f) return 1.0f;
  using isa::Opcode;
  switch (op) {
    case Opcode::kConv2D:
    case Opcode::kFullyConnected: {
      GPTPU_CHECK(inner_n > 0, "arithmetic operator needs inner_n");
      return kQuantLimit / (width * width * static_cast<float>(inner_n));
    }
    case Opcode::kAdd:
    case Opcode::kSub:
      return kQuantLimit / (2.0f * width);
    case Opcode::kMul:
      return kQuantLimit / (width * width);
    default:
      return kQuantLimit / width;
  }
}

float output_scale_minmax(isa::Opcode op, Range in0, Range in1,
                          usize inner_n) {
  const float m0 = std::max(in0.magnitude(), 1e-30f);
  const float m1 = std::max(in1.magnitude(), 1e-30f);
  using isa::Opcode;
  switch (op) {
    case Opcode::kConv2D:
    case Opcode::kFullyConnected:
      GPTPU_CHECK(inner_n > 0, "arithmetic operator needs inner_n");
      return kQuantLimit / (m0 * m1 * static_cast<float>(inner_n));
    case Opcode::kAdd:
    case Opcode::kSub:
      return kQuantLimit / (m0 + m1);
    case Opcode::kMul:
      return kQuantLimit / (m0 * m1);
    default:
      return kQuantLimit / m0;
  }
}

float sampled_scale(Range sampled_outputs, float headroom) {
  GPTPU_CHECK(headroom >= 1.0f, "headroom must be >= 1");
  const float mag = sampled_outputs.magnitude();
  if (mag == 0.0f) return 1.0f;
  return kQuantLimit / (mag * headroom);
}

i8 quantize_value(float raw, float scale) {
  // saturate_i8 owns the NaN->0 mapping and the clamp (float->int
  // conversion of NaN or out-of-range values is UB); only the rounding
  // rule -- round() here, half-away-from-zero -- is specific to input
  // quantization.
  return saturate_i8(std::round(raw * scale));
}

void quantize(std::span<const float> raw, float scale, std::span<i8> out) {
  GPTPU_CHECK(raw.size() == out.size(), "quantize: size mismatch");
  for (usize i = 0; i < raw.size(); ++i) out[i] = quantize_value(raw[i], scale);
}

std::vector<i8> quantize(std::span<const float> raw, float scale) {
  std::vector<i8> out(raw.size());
  quantize(raw, scale, out);
  return out;
}

void dequantize(std::span<const i8> q, float scale, std::span<float> out) {
  GPTPU_CHECK(q.size() == out.size(), "dequantize: size mismatch");
  GPTPU_CHECK(scale > 0.0f, "dequantize: non-positive scale");
  const float inv = 1.0f / scale;
  for (usize i = 0; i < q.size(); ++i) {
    out[i] = static_cast<float>(q[i]) * inv;
  }
}

std::vector<float> dequantize(std::span<const i8> q, float scale) {
  std::vector<float> out(q.size());
  dequantize(q, scale, out);
  return out;
}

}  // namespace gptpu::quant
