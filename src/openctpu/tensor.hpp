// Overloaded tensor operators (§5): OpenCtpu "implemented optimized
// overloaded operators on tensor data (e.g., matrix-add [+], matrix-sub
// [-], matrix-multiply [*]) to perform pair-wise matrix addition,
// subtraction and multiplication".
//
// openctpu::Tensor is a value type owning both the host storage and its
// openctpu_buffer; arithmetic dispatches to the TPU through the runtime.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "openctpu/gptpu.hpp"

namespace gptpu::openctpu {

class Tensor {
 public:
  explicit Tensor(Shape2D shape) : data_(shape.elems(), 0.0f) {
    auto* dim = openctpu_alloc_dimension(2, shape.rows, shape.cols);
    buffer_ = openctpu_create_buffer(dim, data_.data());
  }

  Tensor(Shape2D shape, std::span<const float> values) : Tensor(shape) {
    GPTPU_CHECK(values.size() == shape.elems(), "value count mismatch");
    std::copy(values.begin(), values.end(), data_.begin());
    refresh();
  }

  // The buffer points into data_, so Tensors pin their storage.
  Tensor(const Tensor&) = delete;
  Tensor& operator=(const Tensor&) = delete;
  Tensor(Tensor&&) = delete;
  Tensor& operator=(Tensor&&) = delete;

  [[nodiscard]] Shape2D shape() const { return buffer_->shape(); }
  [[nodiscard]] openctpu_buffer* buffer() { return buffer_; }
  [[nodiscard]] MatrixView<float> view() {
    return {data_.data(), buffer_->shape()};
  }
  [[nodiscard]] MatrixView<const float> view() const {
    return {data_.data(), buffer_->shape()};
  }

  /// Must be called after mutating the host data directly, so the next
  /// operator re-calibrates the quantization range.
  void refresh();

 private:
  std::vector<float> data_;
  openctpu_buffer* buffer_ = nullptr;
};

/// Pair-wise operators; each allocates the result tensor and runs one TPU
/// operation.
[[nodiscard]] std::unique_ptr<Tensor> operator+(Tensor& a, Tensor& b);
[[nodiscard]] std::unique_ptr<Tensor> operator-(Tensor& a, Tensor& b);
[[nodiscard]] std::unique_ptr<Tensor> operator*(Tensor& a, Tensor& b);

}  // namespace gptpu::openctpu
