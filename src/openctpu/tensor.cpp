#include "openctpu/tensor.hpp"

#include "runtime/runtime.hpp"

namespace gptpu::openctpu {

void Tensor::refresh() {
  buffer_->impl->bump_version();
  buffer_->impl->recalibrate();
}

namespace {
std::unique_ptr<Tensor> binary(tpu_ops op, Tensor& a, Tensor& b) {
  GPTPU_CHECK(a.shape() == b.shape(), "operand shape mismatch");
  auto out = std::make_unique<Tensor>(a.shape());
  openctpu_invoke_operator(op, OPENCTPU_SCALE, a.buffer(), b.buffer(),
                           out->buffer());
  return out;
}
}  // namespace

std::unique_ptr<Tensor> operator+(Tensor& a, Tensor& b) {
  return binary(TPU_OP_ADD, a, b);
}
std::unique_ptr<Tensor> operator-(Tensor& a, Tensor& b) {
  return binary(TPU_OP_SUB, a, b);
}
std::unique_ptr<Tensor> operator*(Tensor& a, Tensor& b) {
  return binary(TPU_OP_MUL, a, b);
}

}  // namespace gptpu::openctpu
