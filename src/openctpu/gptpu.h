// Source-compatibility alias: the paper's Figure 3 sample includes
// <gptpu.h>; the implementation lives in gptpu.hpp.
#pragma once

#include "openctpu/gptpu.hpp"
