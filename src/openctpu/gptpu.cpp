#include "openctpu/gptpu.hpp"

#include <atomic>
#include <future>
#include <memory>
#include <mutex>  // std::call_once only; locking goes through gptpu::Mutex
#include <unordered_map>
#include <vector>

#include "common/flight_recorder.hpp"
#include "common/metrics.hpp"
#include "common/thread_annotations.hpp"
#include "runtime/graph_compiler.hpp"
#include "runtime/runtime.hpp"

/// A captured-and-compiled operator graph (opaque in the public header).
/// `recorded` keeps the capture so A/B runs can recompile with different
/// options in tests; `compiled` is what run() executes.
struct openctpu_graph {
  gptpu::runtime::OpGraph recorded;
  gptpu::runtime::CompiledGraph compiled;
};

namespace {

using gptpu::Shape2D;
using gptpu::usize;
using gptpu::isa::Opcode;
using gptpu::isa::QuantMethod;
using gptpu::runtime::OperationRequest;
using gptpu::runtime::Runtime;
using gptpu::runtime::RuntimeConfig;

struct Context {
  std::unique_ptr<Runtime> runtime;

  gptpu::Mutex mu;
  std::vector<std::unique_ptr<openctpu_dimension>> dimensions
      GPTPU_GUARDED_BY(mu);
  std::vector<std::unique_ptr<openctpu_buffer>> buffers GPTPU_GUARDED_BY(mu);
  std::vector<std::unique_ptr<openctpu_graph>> graphs GPTPU_GUARDED_BY(mu);
  std::unordered_map<int, std::future<void>> tasks GPTPU_GUARDED_BY(mu);
  int next_handle GPTPU_GUARDED_BY(mu) = 1;

  /// Status code behind the last -1 (openctpu_last_status): the most
  /// recent permanently-failed operation observed by this context, reset
  /// to kOk by a fully-successful wait/sync. Atomic: readers may poll
  /// from other threads while a wait drains.
  std::atomic<int> last_status{0};
};

/// Maps a front-end failure to the status code openctpu_last_status
/// reports: operations carry their own code, structural capacity errors
/// are kResourceExhausted, anything else is a caller error.
int status_of(const gptpu::Error& e) {
  if (const auto* op = dynamic_cast<const gptpu::OperationFailed*>(&e)) {
    return static_cast<int>(op->code());
  }
  if (dynamic_cast<const gptpu::ResourceExhausted*>(&e) != nullptr) {
    return static_cast<int>(gptpu::StatusCode::kResourceExhausted);
  }
  return static_cast<int>(gptpu::StatusCode::kInvalidArgument);
}

Context& context() {
  // Construct the metrics registry before ctx: function-local statics are
  // destroyed in reverse completion order, and ~Context tears down the
  // Runtime, whose destructor publishes end-of-life gauges into the
  // registry. Without the pin the registry dies first.
  gptpu::metrics::MetricRegistry::global();
  static Context ctx;
  return ctx;
}

Context& initialized_context() {
  Context& ctx = context();
  if (!ctx.runtime) openctpu_init({});
  return ctx;
}

/// Task identity of the currently running kernel function; 0 when called
/// from a plain host thread (operators then serialize on a shared default
/// task, preserving program order).
thread_local gptpu::u64 tls_task_id = 0;

/// Graph being recorded on this thread between openctpu_graph_begin and
/// openctpu_graph_end; null = eager execution.
thread_local openctpu_graph* tls_graph = nullptr;

/// Relative per-op deadline applied to subsequent eager invocations on
/// this thread (openctpu_set_op_deadline); 0 = none.
thread_local double tls_op_deadline = 0;

gptpu::u64 current_task(Runtime& rt) {
  if (tls_task_id == 0) {
    static std::once_flag once;
    static gptpu::u64 default_task = 0;
    std::call_once(once, [&] { default_task = rt.begin_task(); });
    return default_task;
  }
  return tls_task_id;
}

Opcode to_opcode(tpu_ops op) {
  switch (op) {
    case TPU_OP_CONV2D: return Opcode::kConv2D;
    case TPU_OP_FULLY_CONNECTED: return Opcode::kFullyConnected;
    case TPU_OP_SUB: return Opcode::kSub;
    case TPU_OP_ADD: return Opcode::kAdd;
    case TPU_OP_MUL: return Opcode::kMul;
    case TPU_OP_CROP: return Opcode::kCrop;
    case TPU_OP_EXT: return Opcode::kExt;
    case TPU_OP_MEAN: return Opcode::kMean;
    case TPU_OP_MAX: return Opcode::kMax;
    case TPU_OP_TANH: return Opcode::kTanh;
    case TPU_OP_RELU: return Opcode::kReLu;
  }
  throw gptpu::InvalidArgument("unknown tpu_ops value");
}

QuantMethod to_quant(unsigned flags) {
  switch (flags) {
    case OPENCTPU_SCALE: return QuantMethod::kScale;
    case OPENCTPU_MINMAX: return QuantMethod::kMinMax;
    case OPENCTPU_IDENTITY: return QuantMethod::kIdentity;
    default: throw gptpu::InvalidArgument("unknown quantization flags");
  }
}

int invoke(Opcode op, unsigned flags, openctpu_buffer* in0,
           openctpu_buffer* in1, openctpu_buffer* out,
           const openctpu_operator_params& params) {
  GPTPU_CHECK(in0 != nullptr && out != nullptr, "null buffer");
  Runtime& rt = openctpu_runtime();
  OperationRequest req;
  req.op = op;
  req.in0 = in0->impl;
  req.in1 = in1 != nullptr ? in1->impl : nullptr;
  req.out = out->impl;
  req.quant = to_quant(flags);
  req.stride = {params.stride_x, params.stride_y};
  req.kernel_bank = params.kernel_bank;
  req.window = params.window;
  req.pad_target = params.pad_target;
  if (tls_graph != nullptr) {
    // Record mode: capture the request into the thread's open graph. The
    // executor assigns task ids / pins later.
    static gptpu::metrics::Counter& recorded =
        gptpu::metrics::MetricRegistry::global().counter(
            "openctpu.operators_recorded");
    recorded.add(1);
    tls_graph->recorded.add(req);
    return 0;
  }
  req.task_id = current_task(rt);
  if (tls_op_deadline > 0) {
    // The op's earliest start is its task's readiness instant (eager ops
    // carry no not_before), so the absolute deadline anchors there.
    req.deadline_vt = rt.task_ready(req.task_id) + tls_op_deadline;
  }
  // Mint the op's trace id at the submission boundary: for sequential
  // applications this pins trace-id order to program order, which the
  // flight.smoke replay comparison relies on. (Runtime::invoke mints
  // lazily for requests that arrive without one, e.g. graph replays.)
  if (gptpu::flight::armed()) req.trace_id = gptpu::flight::next_trace_id();
  static gptpu::metrics::Counter& invoked =
      gptpu::metrics::MetricRegistry::global().counter(
          "openctpu.operators_invoked");
  invoked.add(1);
  try {
    rt.invoke(req);
  } catch (const gptpu::Error& e) {
    // Record the typed status before the exception reaches the caller
    // (task kernels re-observe it at wait/sync; eager callers can query
    // openctpu_last_status after catching).
    context().last_status.store(status_of(e), std::memory_order_relaxed);
    throw;
  }
  return 0;
}

}  // namespace

Shape2D openctpu_buffer::shape() const {
  GPTPU_CHECK(impl != nullptr, "uninitialized buffer");
  return impl->shape();
}

void openctpu_init(const openctpu_options& options) {
  Context& ctx = context();
  GPTPU_CHECK(!ctx.runtime, "openctpu already initialized");
  RuntimeConfig cfg;
  cfg.num_devices = options.num_devices;
  cfg.faults.spec = options.faults;
  cfg.faults.seed = options.fault_seed;
  cfg.fault_policy.cpu_fallback = options.cpu_fallback;
  ctx.runtime = std::make_unique<Runtime>(cfg);
}

void openctpu_shutdown() {
  Context& ctx = context();
  openctpu_sync();
  {
    gptpu::MutexLock lock(ctx.mu);
    ctx.graphs.clear();  // graphs borrow buffers: tear down first
    ctx.buffers.clear();
    ctx.dimensions.clear();
  }
  ctx.runtime.reset();
}

gptpu::runtime::Runtime& openctpu_runtime() {
  return *initialized_context().runtime;
}

openctpu_dimension* openctpu_alloc_dimension(int dimensions, usize rows,
                                             usize cols) {
  GPTPU_CHECK(dimensions == 1 || dimensions == 2,
              "only 1-D and 2-D data are supported");
  Context& ctx = initialized_context();
  auto dim = std::make_unique<openctpu_dimension>();
  dim->shape = dimensions == 1 ? Shape2D{1, rows} : Shape2D{rows, cols};
  gptpu::MutexLock lock(ctx.mu);
  ctx.dimensions.push_back(std::move(dim));
  return ctx.dimensions.back().get();
}

openctpu_buffer* openctpu_create_buffer(openctpu_dimension* dimension,
                                        float* data, unsigned /*flags*/) {
  GPTPU_CHECK(dimension != nullptr, "null dimension");
  GPTPU_CHECK(data != nullptr, "null data");
  Context& ctx = initialized_context();
  auto buf = std::make_unique<openctpu_buffer>();
  buf->impl = ctx.runtime->create_buffer(dimension->shape, data);
  buf->host = data;
  gptpu::MutexLock lock(ctx.mu);
  ctx.buffers.push_back(std::move(buf));
  return ctx.buffers.back().get();
}

int openctpu_enqueue(const std::function<void()>& kernel) {
  Context& ctx = initialized_context();
  static gptpu::metrics::Counter& enqueued =
      gptpu::metrics::MetricRegistry::global().counter(
          "openctpu.kernels_enqueued");
  enqueued.add(1);
  const gptpu::u64 task_id = ctx.runtime->begin_task();
  int handle;
  {
    gptpu::MutexLock lock(ctx.mu);
    handle = ctx.next_handle++;
  }
  auto fut = std::async(std::launch::async, [kernel, task_id] {
    tls_task_id = task_id;
    kernel();
    tls_task_id = 0;
  });
  gptpu::MutexLock lock(ctx.mu);
  ctx.tasks.emplace(handle, std::move(fut));
  return handle;
}

int openctpu_invoke_operator(tpu_ops op, unsigned flags, openctpu_buffer* in0,
                             openctpu_buffer* in1, openctpu_buffer* out,
                             const openctpu_operator_params& params) {
  return invoke(to_opcode(op), flags, in0, in1, out, params);
}

int openctpu_invoke_operator(tpu_ops op, unsigned flags, openctpu_buffer* in,
                             openctpu_buffer* out,
                             const openctpu_operator_params& params) {
  return invoke(to_opcode(op), flags, in, nullptr, out, params);
}

void openctpu_graph_begin() {
  Context& ctx = initialized_context();
  GPTPU_CHECK(tls_graph == nullptr,
              "a graph recording is already active on this thread");
  auto graph = std::make_unique<openctpu_graph>();
  gptpu::MutexLock lock(ctx.mu);
  ctx.graphs.push_back(std::move(graph));
  tls_graph = ctx.graphs.back().get();
}

void openctpu_graph_output(openctpu_buffer* buffer) {
  GPTPU_CHECK(tls_graph != nullptr, "no graph recording active");
  GPTPU_CHECK(buffer != nullptr && buffer->impl != nullptr, "null buffer");
  tls_graph->recorded.mark_output(buffer->impl);
}

openctpu_graph* openctpu_graph_end(const openctpu_graph_options& options) {
  Context& ctx = initialized_context();
  GPTPU_CHECK(tls_graph != nullptr, "no graph recording active");
  openctpu_graph* graph = tls_graph;
  tls_graph = nullptr;
  gptpu::runtime::GraphCompileOptions copts;
  copts.fuse = options.fuse;
  copts.pipeline = options.pipeline;
  copts.max_stages = options.max_stages;
  graph->compiled =
      gptpu::runtime::GraphCompiler(copts).compile(graph->recorded,
                                                   *ctx.runtime);
  static gptpu::metrics::Counter& compiled =
      gptpu::metrics::MetricRegistry::global().counter(
          "openctpu.graphs_compiled");
  compiled.add(1);
  return graph;
}

double openctpu_graph_run(openctpu_graph* graph) {
  GPTPU_CHECK(graph != nullptr, "null graph");
  Context& ctx = initialized_context();
  return graph->compiled.run(*ctx.runtime);
}

openctpu_graph_stats openctpu_graph_query(const openctpu_graph* graph) {
  GPTPU_CHECK(graph != nullptr, "null graph");
  openctpu_graph_stats stats;
  stats.recorded_nodes = graph->compiled.recorded_nodes();
  stats.steps = graph->compiled.steps().size();
  stats.fused_chains = graph->compiled.fused_chains();
  stats.instructions_eliminated = graph->compiled.instructions_eliminated();
  stats.stages = graph->compiled.num_stages();
  return stats;
}

void openctpu_graph_set_tracing(openctpu_graph* graph, bool on) {
  GPTPU_CHECK(graph != nullptr, "null graph");
  graph->compiled.set_tracing(on);
}

const gptpu::runtime::CompiledGraph* openctpu_graph_compiled(
    const openctpu_graph* graph) {
  GPTPU_CHECK(graph != nullptr, "null graph");
  return &graph->compiled;
}

void openctpu_graph_destroy(openctpu_graph* graph) {
  if (graph == nullptr) return;
  GPTPU_CHECK(tls_graph != graph, "destroying a graph while recording it");
  Context& ctx = context();
  gptpu::MutexLock lock(ctx.mu);
  for (auto it = ctx.graphs.begin(); it != ctx.graphs.end(); ++it) {
    if (it->get() == graph) {
      ctx.graphs.erase(it);
      return;
    }
  }
  GPTPU_CHECK(false, "unknown graph handle");
}

int openctpu_sync() {
  Context& ctx = initialized_context();
  static gptpu::metrics::Counter& syncs =
      gptpu::metrics::MetricRegistry::global().counter("openctpu.syncs");
  syncs.add(1);
  std::unordered_map<int, std::future<void>> pending;
  {
    gptpu::MutexLock lock(ctx.mu);
    pending.swap(ctx.tasks);
  }
  // Drain every task even after a failure, so one permanently-failed
  // operation does not leave later tasks dangling.
  int rc = 0;
  for (auto& [handle, fut] : pending) {
    try {
      fut.get();
    } catch (const gptpu::Error& e) {
      // The failing operation already logged its status on its OpRecord
      // (see openctpu_sync's contract in gptpu.hpp); the typed code also
      // lands on the context for openctpu_last_status.
      ctx.last_status.store(status_of(e), std::memory_order_relaxed);
      rc = -1;
    }
  }
  if (rc == 0) ctx.last_status.store(0, std::memory_order_relaxed);
  return rc;
}

int openctpu_wait(int task_handle) {
  Context& ctx = initialized_context();
  std::future<void> fut;
  {
    gptpu::MutexLock lock(ctx.mu);
    const auto it = ctx.tasks.find(task_handle);
    if (it == ctx.tasks.end()) return 0;  // already completed
    fut = std::move(it->second);
    ctx.tasks.erase(it);
  }
  try {
    fut.get();
  } catch (const gptpu::Error& e) {
    ctx.last_status.store(status_of(e), std::memory_order_relaxed);
    return -1;
  }
  ctx.last_status.store(0, std::memory_order_relaxed);
  return 0;
}

int openctpu_last_status() {
  return context().last_status.load(std::memory_order_relaxed);
}

void openctpu_set_op_deadline(double rel_deadline_vt) {
  GPTPU_CHECK(rel_deadline_vt >= 0, "deadline must be non-negative");
  tls_op_deadline = rel_deadline_vt;
}
