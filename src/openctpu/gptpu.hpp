// OpenCtpu -- the GPTPU programming interface (§5, Table 2).
//
// A C/C++ front end in the spirit of CUDA/OpenCL: the host program
// allocates dimension descriptors and data buffers, enqueues kernel
// functions as tasks, and invokes TPU operators inside those kernels.
// Operators within one kernel instance serialize; distinct tasks run in
// parallel and out of order, so the programmer synchronizes with
// openctpu_sync() / openctpu_wait().
//
// Usage mirrors Figure 3 of the paper:
//
//   void kernel(openctpu_buffer* a, openctpu_buffer* b, openctpu_buffer* c) {
//     openctpu_invoke_operator(TPU_OP_CONV2D, OPENCTPU_SCALE, a, b, c);
//   }
//   ...
//   auto* dim = openctpu_alloc_dimension(2, size, size);
//   auto* ta = openctpu_create_buffer(dim, a);
//   ...
//   openctpu_enqueue(kernel, ta, tb, tc);
//   openctpu_sync();
#pragma once

#include <functional>
#include <string>

#include "common/matrix.hpp"
#include "isa/instruction.hpp"

namespace gptpu::runtime {
class CompiledGraph;
class Runtime;
class TensorBuffer;
}  // namespace gptpu::runtime

/// Operators a kernel can invoke (the Edge TPU instruction set, §3.2).
enum tpu_ops {
  TPU_OP_CONV2D,
  TPU_OP_FULLY_CONNECTED,
  TPU_OP_SUB,
  TPU_OP_ADD,
  TPU_OP_MUL,
  TPU_OP_CROP,
  TPU_OP_EXT,
  TPU_OP_MEAN,
  TPU_OP_MAX,
  TPU_OP_TANH,
  TPU_OP_RELU,
};

/// Quantization-method flags (the `SCALE` argument of Figure 3).
enum openctpu_quant_flags {
  OPENCTPU_SCALE = 0,     // §6.2.2 operator-aware scaling (default)
  OPENCTPU_MINMAX = 1,    // plain min/max range scaling
  OPENCTPU_IDENTITY = 2,  // data is already small integers; scale = 1
};

/// Describes the dimensionality of buffer data (Table 2).
struct openctpu_dimension {
  gptpu::Shape2D shape;
};

/// An input/output data buffer for TPU kernels (Table 2). Wraps host
/// memory owned by the application.
struct openctpu_buffer {
  gptpu::runtime::TensorBuffer* impl = nullptr;
  float* host = nullptr;

  [[nodiscard]] gptpu::Shape2D shape() const;
};

/// Optional parameters for openctpu_invoke_operator.
struct openctpu_operator_params {
  // conv2D
  gptpu::u16 stride_x = 1;
  gptpu::u16 stride_y = 1;
  gptpu::u16 kernel_bank = 1;
  // crop
  gptpu::isa::Window window{};
  // ext
  gptpu::Shape2D pad_target{};
};

// --- context management -----------------------------------------------------

struct openctpu_options {
  gptpu::usize num_devices = 1;
  /// Deterministic fault-injection spec (docs/FAULT_TOLERANCE.md grammar,
  /// e.g. "dev1:loss@20" or "all:transient@p0.01"). Empty = the process
  /// default set by gptpu_cli --faults (or no faults at all).
  std::string faults;
  /// Seed for probabilistic fault clauses; only read when `faults` is set.
  gptpu::u64 fault_seed = 0x6a017;
  /// Degrade operations to the bit-exact CPU reference path when every
  /// device is dead. When false, such operations fail permanently:
  /// openctpu_sync / openctpu_wait return -1 and the operation's OpRecord
  /// carries the status code.
  bool cpu_fallback = true;
};

/// Initializes the GPTPU runtime. Called implicitly (1 device) by the
/// first API call if omitted. Re-initializing with different options
/// requires openctpu_shutdown() first.
void openctpu_init(const openctpu_options& options);
void openctpu_shutdown();

/// The underlying runtime, for examples/benchmarks that report modelled
/// latency and energy.
gptpu::runtime::Runtime& openctpu_runtime();

// --- Table 2 API --------------------------------------------------------------

/// Allocates a dimension descriptor. `dimensions` must be 1 or 2 (the Edge
/// TPU computes on matrices); a 1-D descriptor is a 1 x n row.
openctpu_dimension* openctpu_alloc_dimension(int dimensions, gptpu::usize rows,
                                             gptpu::usize cols = 1);

/// Creates a TPU data buffer over caller-owned host data (row-major
/// float). The data must stay alive while the buffer is used.
openctpu_buffer* openctpu_create_buffer(openctpu_dimension* dimension,
                                        float* data, unsigned flags = 0);

/// Enqueues a TPU task. The kernel runs asynchronously; every operator it
/// invokes serializes within the task. Returns a task handle.
int openctpu_enqueue(const std::function<void()>& kernel);

template <typename... Args>
int openctpu_enqueue(void (*kernel)(Args*...), Args*... args) {
  return openctpu_enqueue(std::function<void()>([=] { kernel(args...); }));
}

/// Invokes one TPU operator inside a kernel function. Two-operand form
/// (conv2D, FullyConnected, add, sub, mul).
int openctpu_invoke_operator(tpu_ops op, unsigned flags, openctpu_buffer* in0,
                             openctpu_buffer* in1, openctpu_buffer* out,
                             const openctpu_operator_params& params = {});

/// Single-operand form (crop, ext, mean, max, tanh, ReLu).
int openctpu_invoke_operator(tpu_ops op, unsigned flags, openctpu_buffer* in,
                             openctpu_buffer* out,
                             const openctpu_operator_params& params = {});

// --- graph capture (the graph-level Tensorizer) -----------------------------
//
// Record-then-execute alternative to the eager operator calls above
// (docs/PERFORMANCE.md, "Graph-level Tensorizer"). Between
// openctpu_graph_begin() and openctpu_graph_end(), this thread's
// openctpu_invoke_operator calls *record* into a dataflow graph instead
// of executing. openctpu_graph_end() compiles the capture -- operator
// fusion plus profiled pipeline partitioning -- and openctpu_graph_run()
// executes the compiled form against the buffers' current contents.
// run() may be called repeatedly: iterative applications re-run one
// compiled graph on evolving data, and quantization points are re-derived
// from the live value ranges each run. Results are bit-exact with eager
// execution of the same operator sequence.

struct openctpu_graph;

struct openctpu_graph_options {
  /// Operator fusion: collapse single-consumer pairwise/elementwise
  /// chains into one fused instruction per tile.
  bool fuse = true;
  /// Pipeline partitioning: split the graph into balanced contiguous
  /// stages, each pinned to one device.
  bool pipeline = true;
  /// Stage-count cap; 0 = up to the runtime's device count.
  gptpu::usize max_stages = 0;
};

/// Starts recording on the calling thread. Recordings do not nest.
void openctpu_graph_begin();

/// Marks a buffer the host reads after the graph runs, so fusion must
/// materialize it even when a recorded operator consumes it. Call between
/// begin and end.
void openctpu_graph_output(openctpu_buffer* buffer);

/// Stops recording and compiles the capture (at least one operator must
/// have been recorded). The graph borrows the recorded buffers; they must
/// outlive it. Owned by the library until openctpu_graph_destroy.
openctpu_graph* openctpu_graph_end(const openctpu_graph_options& options = {});

/// Executes a compiled graph synchronously. Returns the modelled
/// completion instant (virtual seconds) of the graph's slowest step.
double openctpu_graph_run(openctpu_graph* graph);

/// Compile-time statistics, for tests and benchmark reporting.
struct openctpu_graph_stats {
  gptpu::usize recorded_nodes = 0;
  gptpu::usize steps = 0;         // post-fusion executable steps
  gptpu::usize fused_chains = 0;  // chains that merged >= 2 operators
  gptpu::usize instructions_eliminated = 0;  // per-tile instructions saved
  gptpu::usize stages = 0;        // pipeline stages (1 = no pipelining)
};
openctpu_graph_stats openctpu_graph_query(const openctpu_graph* graph);

/// Enables per-stage interval recording ("graph/stage<N>" Chrome trace
/// tracks; see runtime/trace_export.hpp).
void openctpu_graph_set_tracing(openctpu_graph* graph, bool on);

/// The compiled form, for the trace exporter's graph-aware overloads.
const gptpu::runtime::CompiledGraph* openctpu_graph_compiled(
    const openctpu_graph* graph);

void openctpu_graph_destroy(openctpu_graph* graph);

/// Blocks until all enqueued TPU tasks complete.
///
/// Error contract: returns 0 when every task completed; returns -1 when
/// any task failed permanently (an operation exhausted every device
/// placement with CPU fallback disabled, or was otherwise rejected). The
/// failed operation's status code is recorded on its OpRecord
/// (Runtime::opq_log), so callers can tell *which* operation failed and
/// why after the -1. A -1 drains every pending task before returning.
int openctpu_sync();

/// Blocks until the given task completes. Same error contract as
/// openctpu_sync(): 0 on success, -1 when the task's kernel failed
/// permanently (status recorded on the operation's OpRecord).
int openctpu_wait(int task_handle);

/// Status code behind the last -1 (docs/SERVING.md error contract).
///
/// openctpu_wait / openctpu_sync collapse every failure to -1; this
/// per-context query disambiguates. It returns the gptpu::StatusCode
/// (as an int) of the most recent permanently-failed operation observed
/// by this context -- e.g. kDeadlineExceeded for an expired deadline,
/// kResourceExhausted for a structural capacity rejection, kDeviceLost /
/// kExecuteTimeout for a pool death with CPU fallback disabled -- and
/// 0 (kOk) when no failure has been observed since the last successful
/// wait/sync. Eager (non-task) operator invocations record their status
/// here too before rethrowing.
int openctpu_last_status();

/// Per-op deadline for subsequent eager operator invocations on this
/// thread: each op must finish within `rel_deadline_vt` virtual seconds
/// of its earliest start, or it fails with kDeadlineExceeded (the fault
/// watchdog and retry backoff are clamped to the remaining budget --
/// docs/SERVING.md). 0 clears the deadline. Graph recordings ignore it.
void openctpu_set_op_deadline(double rel_deadline_vt);
