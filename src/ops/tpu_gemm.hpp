// tpuGemm -- GPTPU's optimized general matrix multiply (§7.1), the library
// function GPTPU applications invoke the way CUDA code calls cublasGemm.
//
// Two algorithms, matching the paper's study:
//  * kConv2D (the paper's contribution, §7.1.2): each length-N row of A is
//    reshaped into an s x s sub-matrix (s = ceil(sqrt(N))) and each column
//    of B into an s x s kernel; a conv2D whose stride equals the kernel
//    size then computes complete dot products -- one output element per
//    (row, column) pair -- exploiting conv2D's 25x RPS advantage. All K
//    kernels ride in one kernel bank, so the Tensorizer can tile the work
//    freely.
//  * kFullyConnected (the intuitive mapping, §7.1.1): A x B through the
//    FullyConnected operator, blocked by the Tensorizer, partial products
//    aggregated on the CPU.
#pragma once

#include "runtime/runtime.hpp"

namespace gptpu::ops {

enum class GemmAlgo : u8 {
  kConv2D,          // §7.1.2 (default; ~4.3x faster end to end)
  kFullyConnected,  // §7.1.1
};

struct GemmOptions {
  GemmAlgo algo = GemmAlgo::kConv2D;
  isa::QuantMethod quant = isa::QuantMethod::kScale;

  /// Prefer exact (int32 wide-output) arithmetic. With kIdentity
  /// quantization (small-integer data) outputs are always wide -- that is
  /// GPTPU's exact integer mode, the source of Table 5's 0.00-RMSE rows.
  /// For scaled (float) data the wide read-back is only worth 4x the
  /// transfer volume on small results; larger outputs downgrade to
  /// requantized int8, whose <1% error is the regime of Table 4's 0.89%
  /// GEMM MAPE.
  bool exact = true;

  /// Reduction (inner-dimension) chunk for the §6.2.1 P x Q blocking.
  /// Inner dimensions above this split into partial-product operations
  /// whose results the CPU aggregates in float; at or below it one
  /// operation computes full-length dot products.
  usize reduction_chunk = 2048;

  /// §10(3): "GPTPU can achieve the desired level of precision by
  /// iteratively computing on different portions of raw input numbers."
  /// FullyConnected only. 1 = single pass. 2 = a second pass multiplies A
  /// by the quantization *residual* of B (B minus its int8 image), shrinking
  /// the weight-side error by ~127x. 3 = additionally a pass of A's
  /// residual against B (the A2xB2 cross term is second-order and
  /// skipped). Each extra pass costs one more round trip.
  usize precision_passes = 1;
};

/// Largest scaled-data output (elements) read back in wide int32 form.
inline constexpr usize kWideOutputElemLimit = 256u << 10;

/// C = A x B. A is M x N, B is N x K, C is M x K; all host row-major.
/// Functional runtimes compute real (quantized) values into C; the
/// modelled cost lands on the runtime's virtual timeline under `task_id`.
void tpu_gemm(runtime::Runtime& rt, u64 task_id, MatrixView<const float> a,
              MatrixView<const float> b, MatrixView<float> c,
              const GemmOptions& options = {});

/// Timing-only variant for paper-scale shapes: models C = A x B where A
/// and B are described by shape and value range only. Requires a
/// timing-only runtime.
void tpu_gemm_timed(runtime::Runtime& rt, u64 task_id, Shape2D a_shape,
                    Shape2D b_shape, quant::Range a_range,
                    quant::Range b_range, const GemmOptions& options = {});

/// Side length of the reshaped row sub-matrix for inner dimension n.
[[nodiscard]] usize gemm_kernel_side(usize n);

}  // namespace gptpu::ops
