// Thin library wrappers over the primitive TPU operators, for application
// code that works with host matrices directly (the GPTPU apps of §7.2).
#pragma once

#include "runtime/runtime.hpp"

namespace gptpu::ops {

/// c = a (op) b for op in {add, sub, mul}.
void tpu_pairwise(runtime::Runtime& rt, u64 task_id, isa::Opcode op,
                  MatrixView<const float> a, MatrixView<const float> b,
                  MatrixView<float> c,
                  isa::QuantMethod quant = isa::QuantMethod::kScale);

/// c = f(a) for f in {tanh, ReLu}.
void tpu_unary(runtime::Runtime& rt, u64 task_id, isa::Opcode op,
               MatrixView<const float> a, MatrixView<float> c,
               isa::QuantMethod quant = isa::QuantMethod::kScale);

/// Scalar mean/max of a matrix (device tiles + CPU aggregation, §6.2.1).
[[nodiscard]] float tpu_reduce(runtime::Runtime& rt, u64 task_id,
                               isa::Opcode op, MatrixView<const float> a,
                               isa::QuantMethod quant = isa::QuantMethod::kScale);

/// c = conv2D(a, kernel) with the given stride (valid padding). `exact`
/// selects wide int32 outputs (4x readback volume) over requantized int8.
void tpu_conv2d(runtime::Runtime& rt, u64 task_id, MatrixView<const float> a,
                MatrixView<const float> kernel, MatrixView<float> c,
                isa::Stride stride = {1, 1},
                isa::QuantMethod quant = isa::QuantMethod::kScale,
                bool exact = true);

/// c = a[window].
void tpu_crop(runtime::Runtime& rt, u64 task_id, MatrixView<const float> a,
              isa::Window window, MatrixView<float> c,
              isa::QuantMethod quant = isa::QuantMethod::kScale);

/// c = a zero-padded to c's shape.
void tpu_ext(runtime::Runtime& rt, u64 task_id, MatrixView<const float> a,
             MatrixView<float> c,
             isa::QuantMethod quant = isa::QuantMethod::kScale);

}  // namespace gptpu::ops
