#include "ops/elementwise.hpp"

namespace gptpu::ops {

using runtime::OperationRequest;
using runtime::Runtime;
using runtime::TensorBuffer;

namespace {

/// Runs one operation over temporary buffer records wrapping the views.
void run(Runtime& rt, OperationRequest& req, MatrixView<const float> a,
         const MatrixView<const float>* b, MatrixView<float> c) {
  GPTPU_CHECK(rt.config().functional, "ops wrappers need a functional runtime");
  GPTPU_CHECK(a.contiguous() && c.contiguous() &&
                  (b == nullptr || b->contiguous()),
              "ops wrappers need contiguous views");
  TensorBuffer* ba = rt.create_buffer(a.shape(), const_cast<float*>(a.data()));
  TensorBuffer* bb =
      b != nullptr
          ? rt.create_buffer(b->shape(), const_cast<float*>(b->data()))
          : nullptr;
  TensorBuffer* bc = rt.create_buffer(c.shape(), c.data());
  req.in0 = ba;
  req.in1 = bb;
  req.out = bc;
  rt.invoke(req);
  rt.destroy_buffer(ba);
  if (bb != nullptr) rt.destroy_buffer(bb);
  rt.destroy_buffer(bc);
}

}  // namespace

void tpu_pairwise(Runtime& rt, u64 task_id, isa::Opcode op,
                  MatrixView<const float> a, MatrixView<const float> b,
                  MatrixView<float> c, isa::QuantMethod quant) {
  GPTPU_CHECK(isa::op_class(op) == isa::OpClass::kPairwise,
              "tpu_pairwise: not a pairwise opcode");
  OperationRequest req;
  req.task_id = task_id;
  req.op = op;
  req.quant = quant;
  run(rt, req, a, &b, c);
}

void tpu_unary(Runtime& rt, u64 task_id, isa::Opcode op,
               MatrixView<const float> a, MatrixView<float> c,
               isa::QuantMethod quant) {
  GPTPU_CHECK(isa::op_class(op) == isa::OpClass::kElementwise,
              "tpu_unary: not an elementwise opcode");
  OperationRequest req;
  req.task_id = task_id;
  req.op = op;
  req.quant = quant;
  run(rt, req, a, nullptr, c);
}

float tpu_reduce(Runtime& rt, u64 task_id, isa::Opcode op,
                 MatrixView<const float> a, isa::QuantMethod quant) {
  GPTPU_CHECK(isa::op_class(op) == isa::OpClass::kMatrixwise,
              "tpu_reduce: not a matrix-wise opcode");
  float result = 0;
  OperationRequest req;
  req.task_id = task_id;
  req.op = op;
  req.quant = quant;
  MatrixView<float> c{&result, {1, 1}};
  run(rt, req, a, nullptr, c);
  return result;
}

void tpu_conv2d(Runtime& rt, u64 task_id, MatrixView<const float> a,
                MatrixView<const float> kernel, MatrixView<float> c,
                isa::Stride stride, isa::QuantMethod quant, bool exact) {
  OperationRequest req;
  req.task_id = task_id;
  req.op = isa::Opcode::kConv2D;
  req.quant = quant;
  req.stride = stride;
  req.exact_arithmetic = exact;
  run(rt, req, a, &kernel, c);
}

void tpu_crop(Runtime& rt, u64 task_id, MatrixView<const float> a,
              isa::Window window, MatrixView<float> c,
              isa::QuantMethod quant) {
  OperationRequest req;
  req.task_id = task_id;
  req.op = isa::Opcode::kCrop;
  req.quant = quant;
  req.window = window;
  run(rt, req, a, nullptr, c);
}

void tpu_ext(Runtime& rt, u64 task_id, MatrixView<const float> a,
             MatrixView<float> c, isa::QuantMethod quant) {
  OperationRequest req;
  req.task_id = task_id;
  req.op = isa::Opcode::kExt;
  req.quant = quant;
  req.pad_target = c.shape();
  run(rt, req, a, nullptr, c);
}

}  // namespace gptpu::ops
