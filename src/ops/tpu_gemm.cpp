#include "ops/tpu_gemm.hpp"

#include <cmath>

namespace gptpu::ops {

using runtime::OperationRequest;
using runtime::Runtime;
using runtime::TensorBuffer;

usize gemm_kernel_side(usize n) {
  GPTPU_CHECK(n > 0, "gemm: empty inner dimension");
  usize s = static_cast<usize>(std::ceil(std::sqrt(static_cast<double>(n))));
  while (s * s < n) ++s;  // guard against floating-point sqrt rounding
  return s;
}

namespace {

/// Host layout transform for the conv2D algorithm: row i of `a` (length n)
/// becomes the s x s block occupying rows [i*s, (i+1)*s) of the result,
/// filled row-major and zero-padded past n.
Matrix<float> reshape_rows_to_blocks(MatrixView<const float> a, usize s) {
  Matrix<float> out(a.rows() * s, s);
  for (usize i = 0; i < a.rows(); ++i) {
    const auto row = a.row(i);
    for (usize k = 0; k < row.size(); ++k) {
      out(i * s + k / s, k % s) = row[k];
    }
  }
  return out;
}

/// Columns of `b` become the kernel bank: kernel j occupies rows
/// [j*s, (j+1)*s), with the same row-major fill so element k of the column
/// lands where element k of a reshaped row lands.
Matrix<float> reshape_cols_to_kernels(MatrixView<const float> b, usize s) {
  Matrix<float> out(b.cols() * s, s);
  for (usize j = 0; j < b.cols(); ++j) {
    for (usize k = 0; k < b.rows(); ++k) {
      out(j * s + k / s, k % s) = b(k, j);
    }
  }
  return out;
}

void check_gemm_shapes(Shape2D a, Shape2D b, Shape2D c) {
  GPTPU_CHECK(a.cols == b.rows, "gemm: inner dimensions differ");
  GPTPU_CHECK(c.rows == a.rows && c.cols == b.cols,
              "gemm: output shape mismatch");
}

bool use_wide(const GemmOptions& options, Shape2D c) {
  if (!options.exact) return false;
  if (options.quant == isa::QuantMethod::kIdentity) return true;
  return c.elems() <= kWideOutputElemLimit;
}

/// Inner-dimension chunks for the P x Q blocking (§6.2.1). One chunk means
/// full-length dot products (no CPU aggregation of partials).
usize reduction_chunks(const GemmOptions& options, usize n) {
  GPTPU_CHECK(options.reduction_chunk > 0, "gemm: zero reduction chunk");
  return (n + options.reduction_chunk - 1) / options.reduction_chunk;
}

void invoke_conv_gemm(Runtime& rt, u64 task_id, TensorBuffer* a_prime,
                      TensorBuffer* b_prime, TensorBuffer* c, usize s,
                      usize bank, const GemmOptions& options, bool wide) {
  OperationRequest req;
  req.task_id = task_id;
  req.op = isa::Opcode::kConv2D;
  req.in0 = a_prime;
  req.in1 = b_prime;
  req.out = c;
  req.quant = options.quant;
  req.exact_arithmetic = wide;
  req.stride = {static_cast<u16>(s), static_cast<u16>(s)};
  req.kernel_bank = static_cast<u16>(bank);
  rt.invoke(req);
}

}  // namespace

void tpu_gemm(Runtime& rt, u64 task_id, MatrixView<const float> a,
              MatrixView<const float> b, MatrixView<float> c,
              const GemmOptions& options) {
  check_gemm_shapes(a.shape(), b.shape(), c.shape());
  GPTPU_CHECK(c.contiguous(), "gemm: output view must be contiguous");
  GPTPU_CHECK(rt.config().functional, "tpu_gemm needs a functional runtime");
  const bool wide = use_wide(options, c.shape());

  if (options.algo == GemmAlgo::kFullyConnected) {
    // The intuitive mapping: one FullyConnected operation; the Tensorizer
    // blocks it into instructions and the CPU aggregates partials.
    GPTPU_CHECK(a.contiguous() && b.contiguous(),
                "gemm: operands must be contiguous");
    GPTPU_CHECK(options.precision_passes >= 1 &&
                    options.precision_passes <= 3,
                "gemm: precision_passes must be 1..3");

    // Passes 1 and 2 share the A operand buffer, so its tiles stay
    // resident on-device (§6.1) and the residual pass only moves the
    // (tiny) weight residual.
    TensorBuffer* ba =
        rt.create_buffer(a.shape(), const_cast<float*>(a.data()));
    auto run_fc = [&](TensorBuffer* lhs, MatrixView<const float> rhs,
                      MatrixView<float> dest) {
      TensorBuffer* bb =
          rt.create_buffer(rhs.shape(), const_cast<float*>(rhs.data()));
      TensorBuffer* bc = rt.create_buffer(dest.shape(), dest.data());
      OperationRequest req;
      req.task_id = task_id;
      req.op = isa::Opcode::kFullyConnected;
      req.in0 = lhs;
      req.in1 = bb;
      req.out = bc;
      req.quant = options.quant;
      req.exact_arithmetic = wide;
      rt.invoke(req);
      rt.destroy_buffer(bb);
      rt.destroy_buffer(bc);
    };

    run_fc(ba, b, c);
    if (options.precision_passes == 1) {
      rt.destroy_buffer(ba);
      return;
    }

    // Residual of an operand against its own int8 image: what the first
    // pass could not see. The residual's range is ~1/254 of the original,
    // so its own quantization error is ~127x smaller (§10(3)).
    auto residual_of = [](MatrixView<const float> m) {
      Matrix<float> r(m.shape());
      const std::span<const float> flat{m.data(), m.shape().elems()};
      const float s = quant::input_scale(quant::calibrate(flat));
      for (usize i = 0; i < flat.size(); ++i) {
        r.span()[i] = flat[i] - quant::quantize_value(flat[i], s) / s;
      }
      return r;
    };
    auto accumulate = [&](const Matrix<float>& part) {
      for (usize i = 0; i < c.shape().elems(); ++i) {
        c.data()[i] += part.data()[i];
      }
      rt.charge_host(task_id,
                     static_cast<double>(c.shape().elems()) /
                         perfmodel::kCpuVectorFlopsPerSec,
                     "gemm-residual-sum");
    };

    Matrix<float> part(c.shape());
    const Matrix<float> b_res = residual_of(b);
    run_fc(ba, b_res.view(), part.view());
    accumulate(part);
    rt.destroy_buffer(ba);
    if (options.precision_passes == 2) return;

    const Matrix<float> a_res = residual_of(a);
    TensorBuffer* ba_res =
        rt.create_buffer(a_res.shape(), const_cast<float*>(a_res.data()));
    run_fc(ba_res, b, part.view());
    rt.destroy_buffer(ba_res);
    accumulate(part);
    return;
  }

  // conv2D algorithm with the §6.2.1 blocking: the inner dimension splits
  // into reduction chunks; each chunk's partial products are complete
  // conv2D dot products and the CPU aggregates the chunks in float.
  const usize n = a.cols();
  const usize chunks = reduction_chunks(options, n);
  const usize nc = (n + chunks - 1) / chunks;
  Matrix<float> partial;
  if (chunks > 1) partial = Matrix<float>(c.shape());

  for (usize chunk = 0; chunk < chunks; ++chunk) {
    const usize n0 = chunk * nc;
    const usize len = std::min(nc, n - n0);
    const usize s = gemm_kernel_side(len);

    // Host layout transforms (real work, modelled cost).
    Matrix<float> a_prime =
        reshape_rows_to_blocks(a.sub(0, n0, {a.rows(), len}), s);
    Matrix<float> b_prime =
        reshape_cols_to_kernels(b.sub(n0, 0, {len, b.cols()}), s);
    rt.charge_host(task_id,
                   rt.pool().timing().host_reshape_latency(
                       (a_prime.elems() + b_prime.elems()) * sizeof(float)),
                   "gemm-reshape");

    MatrixView<float> dest = chunks > 1 ? partial.view() : c;
    TensorBuffer* ba = rt.create_buffer(a_prime.shape(), a_prime.data());
    TensorBuffer* bb = rt.create_buffer(b_prime.shape(), b_prime.data());
    TensorBuffer* bc = rt.create_buffer(dest.shape(), dest.data());
    invoke_conv_gemm(rt, task_id, ba, bb, bc, s, b.cols(), options, wide);
    rt.destroy_buffer(ba);
    rt.destroy_buffer(bb);
    rt.destroy_buffer(bc);

    if (chunks > 1) {
      // CPU aggregation of the partial products (§6.2.1): "the CPU code
      // only needs to add received values"; float accumulation keeps
      // wider-than-8-bit precision.
      rt.charge_host(task_id,
                     static_cast<double>(c.shape().elems()) /
                         perfmodel::kCpuVectorFlopsPerSec,
                     "gemm-aggregate");
      for (usize r = 0; r < c.rows(); ++r) {
        float* dst = c.row(r).data();
        const float* src = partial.view().row(r).data();
        for (usize j = 0; j < c.cols(); ++j) {
          dst[j] = chunk == 0 ? src[j] : dst[j] + src[j];
        }
      }
    }
  }
}

void tpu_gemm_timed(Runtime& rt, u64 task_id, Shape2D a_shape, Shape2D b_shape,
                    quant::Range a_range, quant::Range b_range,
                    const GemmOptions& options) {
  check_gemm_shapes(a_shape, b_shape, {a_shape.rows, b_shape.cols});
  GPTPU_CHECK(!rt.config().functional,
              "tpu_gemm_timed needs a timing-only runtime");
  const Shape2D c_shape{a_shape.rows, b_shape.cols};
  const bool wide = use_wide(options, c_shape);
  const quant::Range c_range{0, a_range.magnitude() * b_range.magnitude() *
                                    static_cast<float>(a_shape.cols)};

  if (options.algo == GemmAlgo::kFullyConnected) {
    // Mirrors the functional path: passes 1-2 share the A buffer (tiles
    // stay resident); pass 3 ships A's residual.
    TensorBuffer* ba = rt.create_virtual_buffer(a_shape, a_range);
    for (usize pass = 0; pass < options.precision_passes; ++pass) {
      TensorBuffer* lhs =
          pass == 2 ? rt.create_virtual_buffer(a_shape, a_range) : ba;
      TensorBuffer* bb = rt.create_virtual_buffer(b_shape, b_range);
      TensorBuffer* bc = rt.create_virtual_buffer(c_shape, c_range);
      OperationRequest req;
      req.task_id = task_id;
      req.op = isa::Opcode::kFullyConnected;
      req.in0 = lhs;
      req.in1 = bb;
      req.out = bc;
      req.quant = options.quant;
      req.exact_arithmetic = wide;
      rt.invoke(req);
      if (pass > 0) {
        rt.charge_host(task_id,
                       static_cast<double>(c_shape.elems()) /
                           perfmodel::kCpuVectorFlopsPerSec,
                       "gemm-residual-sum");
      }
    }
    return;
  }

  const usize n = a_shape.cols;
  const usize chunks = reduction_chunks(options, n);
  const usize nc = (n + chunks - 1) / chunks;
  for (usize chunk = 0; chunk < chunks; ++chunk) {
    const usize n0 = chunk * nc;
    const usize len = std::min(nc, n - n0);
    const usize s = gemm_kernel_side(len);
    const Shape2D ap{a_shape.rows * s, s};
    const Shape2D bp{b_shape.cols * s, s};
    rt.charge_host(task_id,
                   rt.pool().timing().host_reshape_latency(
                       (ap.elems() + bp.elems()) * sizeof(float)),
                   "gemm-reshape");
    TensorBuffer* ba = rt.create_virtual_buffer(ap, a_range);
    TensorBuffer* bb = rt.create_virtual_buffer(bp, b_range);
    TensorBuffer* bc = rt.create_virtual_buffer(c_shape, c_range);
    invoke_conv_gemm(rt, task_id, ba, bb, bc, s, b_shape.cols, options, wide);
    if (chunks > 1) {
      rt.charge_host(task_id,
                     static_cast<double>(c_shape.elems()) /
                         perfmodel::kCpuVectorFlopsPerSec,
                     "gemm-aggregate");
    }
  }
}

}  // namespace gptpu::ops
