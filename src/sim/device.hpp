// The simulated Edge TPU device.
//
// A Device couples three things:
//  * functional state: int8 tensors resident in the 8 MB on-chip memory and
//    the bit-accurate execution of instructions over them (kernels.hpp);
//  * a timing state: two VirtualResources -- the compute unit and the
//    PCIe link -- whose occupancy yields modelled completion times;
//  * a memory accountant that enforces the 8 MB capacity, which is what
//    forces the Tensorizer to tile large operations.
//
// A Device is driven by a single runtime worker at a time, which owns all
// staging/execute/read-back ordering. The tensor table and the memory
// accountant are nevertheless guarded by an internal mutex (with clang
// thread-safety annotations) so pool-level introspection -- memory_used(),
// idle_at(), energy integration -- may run from other threads while the
// worker is in flight.
//
// In timing-only mode (functional=false) tensors carry no data: the same
// scheduling, tiling and memory-pressure paths run, but instruction
// payloads are skipped. This is how paper-scale inputs (up to 9 GB) are
// modelled without materializing them (DESIGN.md §6).
#pragma once

#include <optional>
#include <span>
#include <unordered_map>

#include "common/domain_annotations.hpp"
#include "common/matrix.hpp"
#include "common/status.hpp"
#include "common/thread_annotations.hpp"
#include "common/timeline.hpp"
#include "isa/instruction.hpp"
#include "isa/model_format.hpp"
#include "sim/timing_model.hpp"

namespace gptpu {
class ThreadPool;
}  // namespace gptpu

namespace gptpu::sim {

class FaultInjector;

struct DeviceConfig {
  u32 id = 0;
  usize memory_bytes = perfmodel::kEdgeTpuMemoryBytes;
  bool functional = true;
};

class Device {
 public:
  Device(const DeviceConfig& config, const TimingModel* timing);

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  /// Result of an operation that produces a tensor: its handle and the
  /// modelled completion time.
  struct Completion {
    isa::DeviceTensorId id;
    Seconds done = 0;
  };

  // Every fallible boundary below returns Result instead of throwing:
  // these methods run on runtime worker threads, where an escaping
  // exception would std::terminate the process (lint rule R7 bans the
  // throw keyword in device.cpp). Capacity misses surface as
  // kResourceExhausted; an attached FaultInjector adds the fault codes in
  // common/status.hpp. Precondition violations (bad sizes, unknown ids)
  // remain GPTPU_CHECK bugs, not statuses.

  /// Allocates an on-chip tensor and transfers `data` into it over the
  /// link. `data` must hold shape.elems() values, or be empty in
  /// timing-only mode. `link_setup` seconds of host-side preparation are
  /// charged serially on the link before the transfer (used when model
  /// creation is not overlapped with data movement; see §6.2.3). Returns
  /// kResourceExhausted when the tensor does not fit.
  GPTPU_VIRTUAL_DOMAIN
  Result<Completion> write_tensor(Shape2D shape, float scale,
                                  std::span<const i8> data, Seconds ready,
                                  Seconds link_setup = 0) GPTPU_EXCLUDES(mu_);

  /// Loads a serialized model blob (isa::parse_model) into on-chip memory.
  /// The transfer is charged for the full wire size of the blob.
  GPTPU_VIRTUAL_DOMAIN
  Result<Completion> load_model(std::span<const u8> blob, Seconds ready,
                                Seconds link_setup = 0) GPTPU_EXCLUDES(mu_);

  /// Timing-only variant: loads a model described by `info` without data.
  GPTPU_VIRTUAL_DOMAIN
  Result<Completion> load_model_meta(const isa::ModelInfo& info, Seconds ready,
                                     Seconds link_setup = 0)
      GPTPU_EXCLUDES(mu_);

  /// Executes one instruction whose operands are resident tensors,
  /// allocating the output tensor. Functional mode computes real values;
  /// both modes advance the compute unit's clock.
  GPTPU_VIRTUAL_DOMAIN
  Result<Completion> execute(const isa::Instruction& instr, Seconds ready)
      GPTPU_EXCLUDES(mu_);

  /// Transfers a tensor back to the host. `out` must hold elems() values
  /// (ignored, may be empty, in timing-only mode). Returns the modelled
  /// completion time. On an injected kDataCorruption the destination holds
  /// a corrupted copy (one flipped bit) that the caller must discard.
  GPTPU_VIRTUAL_DOMAIN
  Result<Seconds> read_tensor(isa::DeviceTensorId id, std::span<i8> out,
                              Seconds ready) GPTPU_EXCLUDES(mu_);

  /// Reads a wide (int32 accumulator) tensor; 4x the transfer volume.
  GPTPU_VIRTUAL_DOMAIN
  Result<Seconds> read_tensor_wide(isa::DeviceTensorId id, std::span<i32> out,
                                   Seconds ready) GPTPU_EXCLUDES(mu_);

  void free_tensor(isa::DeviceTensorId id) GPTPU_EXCLUDES(mu_);

  [[nodiscard]] Shape2D tensor_shape(isa::DeviceTensorId id) const
      GPTPU_EXCLUDES(mu_);
  [[nodiscard]] float tensor_scale(isa::DeviceTensorId id) const
      GPTPU_EXCLUDES(mu_);
  /// View into the resident tensor's bytes. The view stays valid until the
  /// tensor is freed; only the owning worker may free while views exist.
  [[nodiscard]] MatrixView<const i8> tensor_data(isa::DeviceTensorId id) const
      GPTPU_EXCLUDES(mu_);
  /// Modelled time at which the tensor's producer finishes.
  GPTPU_VIRTUAL_DOMAIN
  [[nodiscard]] Seconds tensor_ready(isa::DeviceTensorId id) const
      GPTPU_EXCLUDES(mu_);

  [[nodiscard]] usize memory_used() const GPTPU_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return memory_used_;
  }
  [[nodiscard]] usize memory_capacity() const { return config_.memory_bytes; }
  [[nodiscard]] usize memory_available() const GPTPU_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return config_.memory_bytes - memory_used_;
  }

  [[nodiscard]] u32 id() const { return config_.id; }
  [[nodiscard]] bool functional() const { return config_.functional; }

  /// Modelled instant at which all scheduled work on this device is done.
  GPTPU_VIRTUAL_DOMAIN
  [[nodiscard]] Seconds idle_at() const;
  /// Total busy seconds (compute + link), the basis of active energy.
  GPTPU_VIRTUAL_DOMAIN
  [[nodiscard]] Seconds active_time() const;

  [[nodiscard]] const VirtualResource& compute_unit() const {
    return compute_;
  }
  [[nodiscard]] const VirtualResource& link() const { return link_; }

  /// Enables interval recording on the compute unit and the link (for
  /// trace export).
  void set_tracing(bool on) {
    compute_.set_tracing(on);
    link_.set_tracing(on);
  }

  /// Returns the device to a pristine state (memory and clocks).
  void reset() GPTPU_EXCLUDES(mu_);

  /// Worker pool the functional kernels stripe their output rows across
  /// (nullptr, the default, runs them serially). Set once at pool
  /// construction, before any worker drives the device; the kernels'
  /// chunk tasks never take device or runtime locks, so striping cannot
  /// invert a lock order or stall the owning worker.
  void set_compute_pool(ThreadPool* pool) { compute_pool_ = pool; }

  /// Attaches a fault injector the boundary methods consult (nullptr, the
  /// default, costs exactly one branch per boundary). Set at Runtime
  /// construction, before any worker drives the device.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }

 private:
  struct TensorRecord {
    Shape2D shape{};
    float scale = 1.0f;
    Seconds ready = 0;       // when the producing transfer/instruction ends
    bool wide = false;       // int32 accumulator tensor (4 bytes/element)
    std::vector<i8> data;    // raw bytes; empty in timing-only mode

    [[nodiscard]] usize bytes() const {
      return shape.elems() * (wide ? sizeof(i32) : sizeof(i8));
    }
  };

  const TensorRecord& record(isa::DeviceTensorId id) const GPTPU_REQUIRES(mu_);
  /// Consults the injector at a transfer boundary; non-OK means the
  /// transfer must not proceed (the link time is charged for transient
  /// failures -- the wire was occupied before the CRC check rejected it).
  GPTPU_VIRTUAL_DOMAIN
  Status consult_transfer(Seconds ready, Seconds wire_seconds);
  Result<isa::DeviceTensorId> alloc(Shape2D shape, float scale, Seconds ready,
                                    bool with_data, bool wide = false)
      GPTPU_REQUIRES(mu_);

  DeviceConfig config_;
  const TimingModel* timing_;
  ThreadPool* compute_pool_ = nullptr;    // written before workers start
  FaultInjector* injector_ = nullptr;     // written before workers start
  VirtualResource compute_;
  VirtualResource link_;
  mutable Mutex mu_;
  std::unordered_map<u32, TensorRecord> tensors_ GPTPU_GUARDED_BY(mu_);
  usize memory_used_ GPTPU_GUARDED_BY(mu_) = 0;
  u32 next_id_ GPTPU_GUARDED_BY(mu_) = 0;
};

}  // namespace gptpu::sim
