// Device profiles: the simulator parameterized over TPU variants.
//
// The paper deliberately targets the M.2 Edge TPU on PCIe (§3.1), noting
// the USB 3.0 attachment option has worse latency and bandwidth, and
// contrasts the Edge TPU against the Cloud TPU (§2.2: 8 MB vs large
// on-chip memory, 4 vs 90 TOPS, 2 W vs 250 W, 128x128 vs 256x256 matrix
// units). A profile captures those axes so the same runtime can model all
// three machines; bench_ablation compares them.
#pragma once

#include <string_view>

#include "common/types.hpp"
#include "perfmodel/machine_constants.hpp"

namespace gptpu::sim {

struct DeviceProfile {
  std::string_view name;
  usize memory_bytes;
  /// Multiplier on every Table-1 throughput (instruction rates and MAC
  /// rates). 1.0 = the measured M.2 Edge TPU.
  double compute_scale;
  double link_seconds_per_byte;
  double link_fixed_seconds;
  double active_watts;
};

/// The paper's platform: M.2 Edge TPU on one PCIe 2.0 lane [§2.2, §3.2].
inline constexpr DeviceProfile kEdgeTpuPcie{
    "edge-tpu-pcie",
    perfmodel::kEdgeTpuMemoryBytes,
    1.0,
    perfmodel::kLinkSecondsPerByte,
    perfmodel::kLinkFixedSeconds,
    perfmodel::kEdgeTpuActiveWatts,
};

/// The USB 3.0 attachment the paper rejects (§3.1): same silicon, but the
/// Coral USB accelerator sustains only ~80 MB/s of effective model/tensor
/// traffic (protocol framing + bulk-transfer turnarounds) with ~2 ms of
/// per-transfer setup -- roughly half the PCIe M.2 path's measured 6 ms/MB.
inline constexpr DeviceProfile kEdgeTpuUsb{
    "edge-tpu-usb",
    perfmodel::kEdgeTpuMemoryBytes,
    1.0,
    1.0 / 80.0e6,
    2.0e-3,
    perfmodel::kEdgeTpuActiveWatts,
};

/// A Cloud-TPU-class device (§2.2: 90 TOPS at 250 W, 256x256 matrix unit,
/// large on-chip memory) on a PCIe 3.0 x16 host link (~12 GB/s). Compute
/// scaled by the documented 90/4 TOPS ratio.
inline constexpr DeviceProfile kCloudTpu{
    "cloud-tpu",
    256ull << 20,
    90.0 / 4.0,
    1.0 / 12.0e9,
    50.0e-6,
    250.0,
};

}  // namespace gptpu::sim
