// gptpu-analyze: deterministic-file -- output and dispatch order
// here must be independent of hash-map layout (docs/ANALYSIS.md R10).
#include "sim/fault_injector.hpp"

#include <cctype>
#include <charconv>
#include <sstream>

#include "common/metrics.hpp"

namespace gptpu::sim {

namespace {

/// fault.injected lives in the virtual metrics domain on purpose: fault
/// schedules are positional in the deterministic boundary-op sequence, so
/// the count is replayable and belongs in the byte-stable JSON slice.
metrics::Counter& injected_counter() {
  static metrics::Counter& c =
      metrics::MetricRegistry::global().counter("fault.injected");
  return c;
}

struct ProcessDefault {
  Mutex mu;
  FaultConfig config GPTPU_GUARDED_BY(mu);
};

ProcessDefault& process_default_slot() {
  static ProcessDefault slot;
  return slot;
}

[[noreturn]] void spec_error(std::string_view clause, const std::string& why) {
  std::ostringstream os;
  os << "fault spec clause '" << clause << "': " << why;
  throw InvalidArgument(os.str());
}

u64 parse_u64(std::string_view clause, std::string_view text,
              const char* what) {
  u64 value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    spec_error(clause, std::string("cannot parse ") + what + " '" +
                           std::string(text) + "'");
  }
  return value;
}

double parse_double(std::string_view clause, std::string_view text,
                    const char* what) {
  try {
    usize used = 0;
    const double value = std::stod(std::string(text), &used);
    if (used != text.size()) throw std::invalid_argument("trailing junk");
    return value;
  } catch (const std::exception&) {
    spec_error(clause, std::string("cannot parse ") + what + " '" +
                           std::string(text) + "'");
  }
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

FaultInjector::FaultInjector(const FaultConfig& config, usize num_devices)
    : config_(config) {
  MutexLock lock(mu_);
  devices_.resize(num_devices);
  GPTPU_CHECK(config_.watchdog_vt > 0, "fault watchdog must be positive");

  std::string_view spec = config_.spec;
  while (!spec.empty()) {
    const usize semi = spec.find(';');
    std::string_view clause = trim(spec.substr(0, semi));
    spec = semi == std::string_view::npos ? std::string_view{}
                                          : spec.substr(semi + 1);
    if (clause.empty()) continue;

    // target ':' kind '@' where
    const usize colon = clause.find(':');
    if (colon == std::string_view::npos) spec_error(clause, "missing ':'");
    const std::string_view target = trim(clause.substr(0, colon));
    std::string_view body = trim(clause.substr(colon + 1));
    const usize at_sign = body.find('@');
    if (at_sign == std::string_view::npos) spec_error(clause, "missing '@'");
    const std::string_view kind_text = trim(body.substr(0, at_sign));
    std::string_view where = trim(body.substr(at_sign + 1));

    Clause parsed;
    if (kind_text == "transient") {
      parsed.kind = Kind::kTransient;
    } else if (kind_text == "hang") {
      parsed.kind = Kind::kHang;
      parsed.hang_vt = 2 * config_.watchdog_vt;  // fatal unless overridden
      const usize hang_colon = where.find(':');
      if (hang_colon != std::string_view::npos) {
        parsed.hang_vt = parse_double(clause, trim(where.substr(hang_colon + 1)),
                                      "hang seconds");
        if (parsed.hang_vt <= 0) spec_error(clause, "hang seconds must be > 0");
        where = trim(where.substr(0, hang_colon));
      }
    } else if (kind_text == "loss") {
      parsed.kind = Kind::kLoss;
    } else if (kind_text == "bitflip") {
      parsed.kind = Kind::kBitFlip;
    } else {
      spec_error(clause, "unknown kind '" + std::string(kind_text) +
                             "' (transient|hang|loss|bitflip)");
    }

    if (parsed.kind == Kind::kTransient && !where.empty() &&
        where.front() == 'p') {
      parsed.prob = parse_double(clause, where.substr(1), "probability");
      if (parsed.prob <= 0 || parsed.prob > 1) {
        spec_error(clause, "probability must be in (0, 1]");
      }
    } else {
      const usize x = where.find('x');
      if (x != std::string_view::npos) {
        if (parsed.kind == Kind::kLoss) {
          spec_error(clause, "loss takes no repeat count");
        }
        parsed.count =
            parse_u64(clause, trim(where.substr(x + 1)), "repeat count");
        if (parsed.count == 0) spec_error(clause, "repeat count must be > 0");
        where = trim(where.substr(0, x));
      }
      parsed.at = parse_u64(clause, where, "op index");
    }

    if (target == "all") {
      for (auto& dev : devices_) dev.clauses.push_back(parsed);
    } else if (target.size() > 3 && target.substr(0, 3) == "dev") {
      const u64 index = parse_u64(clause, target.substr(3), "device index");
      if (index >= devices_.size()) {
        spec_error(clause, "device index out of range (have " +
                               std::to_string(devices_.size()) + " devices)");
      }
      devices_[static_cast<usize>(index)].clauses.push_back(parsed);
    } else {
      spec_error(clause, "target must be devN or all");
    }
  }
  seed_schedules();
}

void FaultInjector::seed_schedules() {
  for (usize d = 0; d < devices_.size(); ++d) {
    auto& dev = devices_[d];
    for (auto& n : dev.ops) n = 0;
    dev.total_ops = 0;
    dev.lost = false;
    // Distinct deterministic stream per device.
    dev.rng = Rng(config_.seed ^ (0x9e3779b97f4a7c15ULL * (d + 1)));
  }
}

void FaultInjector::reset() {
  MutexLock lock(mu_);
  seed_schedules();
}

FaultInjector::Decision FaultInjector::consult(u32 device, Boundary boundary,
                                               Seconds watchdog_clamp) {
  MutexLock lock(mu_);
  GPTPU_CHECK(device < devices_.size(), "fault consult: bad device index");
  auto& dev = devices_[device];

  const u64 op = dev.ops[static_cast<usize>(boundary)]++;
  const u64 total = dev.total_ops++;

  Decision decision;
  if (dev.lost) {
    decision.code = StatusCode::kDeviceLost;
    return decision;  // already counted as injected when the loss fired
  }

  for (const Clause& clause : dev.clauses) {
    switch (clause.kind) {
      case Kind::kLoss:
        if (total >= clause.at) {
          dev.lost = true;
          decision.code = StatusCode::kDeviceLost;
        }
        break;
      case Kind::kTransient:
        if (boundary != Boundary::kTransfer) break;
        if (clause.prob >= 0 ? dev.rng.next_double() < clause.prob
                             : (op >= clause.at && op < clause.at + clause.count)) {
          decision.code = StatusCode::kTransferError;
        }
        break;
      case Kind::kHang:
        if (boundary != Boundary::kExecute) break;
        if (op >= clause.at && op < clause.at + clause.count) {
          // The effective watchdog is the configured one clamped to the
          // op's remaining deadline budget: a hung execute is billed at
          // most min(watchdog, remaining deadline) of virtual time.
          Seconds effective = config_.watchdog_vt;
          if (watchdog_clamp >= 0 && watchdog_clamp < effective) {
            effective = watchdog_clamp;
          }
          if (clause.hang_vt >= config_.watchdog_vt) {
            // Genuine hang past the device watchdog: device-fatal.
            decision.code = StatusCode::kExecuteTimeout;
            decision.extra_latency = effective;
          } else if (clause.hang_vt >= effective) {
            // The hang would be survivable, but the deadline is not:
            // terminal for the op, not for the device.
            decision.code = StatusCode::kDeadlineExceeded;
            decision.extra_latency = effective;
          } else {
            decision.extra_latency = clause.hang_vt;
          }
        }
        break;
      case Kind::kBitFlip:
        if (boundary != Boundary::kReadback) break;
        if (op >= clause.at && op < clause.at + clause.count) {
          decision.code = StatusCode::kDataCorruption;
          decision.corrupt_bit = dev.rng.next_u64();
        }
        break;
    }
    if (decision.code != StatusCode::kOk) break;
  }

  if (decision.code != StatusCode::kOk || decision.extra_latency > 0) {
    ++injected_;
    injected_counter().add(1);
  }
  return decision;
}

u64 FaultInjector::injected() const {
  MutexLock lock(mu_);
  return injected_;
}

void FaultInjector::set_process_default(const FaultConfig& config) {
  auto& slot = process_default_slot();
  MutexLock lock(slot.mu);
  slot.config = config;
}

FaultConfig FaultInjector::process_default() {
  auto& slot = process_default_slot();
  MutexLock lock(slot.mu);
  return slot.config;
}

}  // namespace gptpu::sim
