#include "sim/timing_model.hpp"

#include <algorithm>
#include <cmath>

namespace gptpu::sim {

namespace {

using isa::Opcode;
using namespace perfmodel;

/// Floor for degenerate (near-empty) instructions; every CISC instruction
/// still crosses the system interconnect once.
constexpr Seconds kMinInstructionSeconds = 2e-6;

/// Output elements per instruction at the shape Table 1 measured: by the
/// definitions of Eq. 1-2, RPS / OPS.
usize reference_out_elems(Opcode op) {
  const auto t = table1(op);
  return static_cast<usize>(std::llround(t.rps / t.ops));
}

/// Square-ish shape holding ~n elements.
Shape2D square_shape(usize n) {
  const usize side = std::max<usize>(
      1, static_cast<usize>(std::llround(std::sqrt(static_cast<double>(n)))));
  return {side, side};
}

}  // namespace

ReferenceShape table1_reference_shape(Opcode op) {
  switch (op) {
    case Opcode::kConv2D:
      // 3x3 kernel producing a 128x128 output tile: RPS/OPS = 16384.
      return {{130, 130}, {3, 3}};
    case Opcode::kFullyConnected:
      // One 128-vector against a 128x128 model: RPS/OPS = 128.
      return {{1, 128}, {128, 128}};
    case Opcode::kMean:
    case Opcode::kMax:
      // Matrix-wise reductions favor 64x64 tiles (§6.2.1); out = 1.
      return {{64, 64}, {0, 0}};
    case Opcode::kSub:
    case Opcode::kAdd:
    case Opcode::kMul:
    case Opcode::kTanh:
    case Opcode::kReLu: {
      const Shape2D s = square_shape(reference_out_elems(op));
      return {s, op_class(op) == isa::OpClass::kPairwise ? s : Shape2D{0, 0}};
    }
    case Opcode::kCrop: {
      // Crop a centered window out of a larger source.
      const Shape2D out = square_shape(reference_out_elems(op));
      return {{out.rows + 64, out.cols + 64}, out};  // in1 abuses: window
    }
    case Opcode::kExt: {
      // Pad a 128x128 source up to the reference output.
      const Shape2D out = square_shape(reference_out_elems(op));
      return {{128, 128}, out};  // in1 abuses: pad target
    }
    case Opcode::kFusedPairwise:
    case Opcode::kFusedElementwise:
      // No Table 1 reference shape: fused chains are compiler-made.
      return {};
  }
  return {};
}

TimingModel::TimingModel(const DeviceProfile& profile) : profile_(profile) {
  GPTPU_CHECK(profile.compute_scale > 0, "non-positive compute scale");
  // Back-solve arithmetic issue overheads so the Table 1 reference shapes
  // reproduce 1/OPS exactly (for the Edge profile; other profiles scale).
  {
    const auto ref = table1_reference_shape(Opcode::kConv2D);
    const Shape2D out{ref.in0.rows - ref.in1.rows + 1,
                      ref.in0.cols - ref.in1.cols + 1};
    const double macs =
        static_cast<double>(out.elems()) * static_cast<double>(ref.in1.elems());
    conv2d_issue_ = 1.0 / table1(Opcode::kConv2D).ops -
                    macs / kConv2DMacsPerSec -
                    static_cast<double>(out.elems()) / kOutputStreamElemsPerSec;
    GPTPU_CHECK(conv2d_issue_ > 0, "conv2D calibration went negative");
  }
  {
    const auto ref = table1_reference_shape(Opcode::kFullyConnected);
    const Shape2D out{ref.in0.rows, ref.in1.cols};
    const double macs = static_cast<double>(ref.in0.rows) * ref.in0.cols *
                        static_cast<double>(ref.in1.cols);
    fc_issue_ = 1.0 / table1(Opcode::kFullyConnected).ops -
                macs / kFullyConnectedMacsPerSec -
                static_cast<double>(out.elems()) / kOutputStreamElemsPerSec;
    GPTPU_CHECK(fc_issue_ > 0, "FullyConnected calibration went negative");
  }
}

Seconds TimingModel::instruction_latency(const isa::Instruction& instr,
                                         Shape2D in0, Shape2D in1,
                                         Shape2D out) const {
  const double out_elems = static_cast<double>(out.elems());
  const double scale = profile_.compute_scale;
  switch (instr.op) {
    case Opcode::kConv2D: {
      const double macs =
          static_cast<double>(isa::mac_count(instr, in0, in1, out));
      return (conv2d_issue_ + macs / kConv2DMacsPerSec +
              out_elems / kOutputStreamElemsPerSec) /
             scale;
    }
    case Opcode::kFullyConnected: {
      const double macs =
          static_cast<double>(isa::mac_count(instr, in0, in1, out));
      return (fc_issue_ + macs / kFullyConnectedMacsPerSec +
              out_elems / kOutputStreamElemsPerSec) /
             scale;
    }
    case Opcode::kFusedPairwise:
    case Opcode::kFusedElementwise: {
      // One instruction floor for the whole chain; each stage streams the
      // tile through its operator at that operator's Table 1 result rate.
      // The fusion win versus separate instructions is the saved per-
      // instruction floors plus the eliminated link transfers and host
      // landings, not a cheaper compute term.
      double seconds = out_elems / table1(instr.head_op).rps;
      for (usize s = 0; s < instr.fused_stage_count; ++s) {
        seconds += out_elems / table1(instr.fused_stages[s].op).rps;
      }
      return std::max(kMinInstructionSeconds, seconds / scale);
    }
    default:
      // Table 1's RPS already encodes each operator's sustained result
      // rate; OPS at the reference shape follows because ref_out/RPS ==
      // 1/OPS there. (No tile-padding surcharge: Table 1's own RPS/OPS
      // ratios are not multiples of the 128x128 tile, so the measured
      // hardware does not quantize instruction cost to whole tiles.)
      return std::max(kMinInstructionSeconds,
                      out_elems / (table1(instr.op).rps * scale));
  }
}

Seconds TimingModel::transfer_latency(usize bytes) const {
  return profile_.link_fixed_seconds +
         static_cast<double>(bytes) * profile_.link_seconds_per_byte;
}

Seconds TimingModel::model_creation_latency(usize elems) const {
  return static_cast<double>(elems) / kTensorizerElemsPerSec;
}

Seconds TimingModel::host_reshape_latency(usize bytes) const {
  return static_cast<double>(bytes) / kHostReshapeBytesPerSec;
}

}  // namespace gptpu::sim
