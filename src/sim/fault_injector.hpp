// Deterministic, seeded fault injection for the simulated device pool.
//
// A FaultInjector owns a per-device fault schedule parsed from a compact
// spec string (grammar below, full reference in docs/FAULT_TOLERANCE.md).
// sim::Device consults it at every fallible boundary -- host->device
// transfers (write_tensor / load_model), execute, and result readback --
// and converts the returned Decision into a Status on its Result path, so
// faults never throw through the runtime's worker threads.
//
// Spec grammar (';'-separated clauses, whitespace ignored):
//
//   clause     := target ':' kind '@' where
//   target     := 'dev' N | 'all'
//   kind/where := 'transient' '@' (K ['x' C] | 'p' P)
//               | 'hang'      '@' K ['x' C] [':' S]
//               | 'loss'      '@' K
//               | 'bitflip'   '@' K ['x' C]
//
//   transient  -- transfer ops K..K+C-1 (C defaults to 1) fail with
//                 kTransferError; 'pP' instead fails each transfer with
//                 probability P (seeded, deterministic).
//   hang       -- execute ops K..K+C-1 stall S virtual seconds (default
//                 2x the watchdog). S below the watchdog is pure extra
//                 latency; at or past it the watchdog fires and the
//                 decision is kExecuteTimeout.
//   loss       -- the device drops off the bus at its K-th boundary op
//                 (transfers + executes + readbacks combined) and every
//                 later call returns kDeviceLost.
//   bitflip    -- readback ops K..K+C-1 return kDataCorruption with a
//                 seeded bit index for the device to flip in the result.
//
// Examples: "dev1:loss@40", "all:transient@p0.02", "dev0:hang@10:0.001",
// "dev0:transient@3x2;dev1:bitflip@7".
//
// Every counter that feeds a decision is per-device and advances exactly
// once per boundary call, so a fixed {spec, seed} pair replays the same
// fault sequence on every run -- the basis of the replay determinism test.
#pragma once

#include <string>
#include <vector>

#include "common/domain_annotations.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"
#include "common/thread_annotations.hpp"
#include "common/types.hpp"

namespace gptpu::sim {

/// Fault-injection configuration carried on RuntimeConfig. An empty spec
/// means no injector is constructed and the device boundaries cost one
/// null-pointer branch each.
struct FaultConfig {
  /// Fault schedule in the grammar above; empty disables injection.
  std::string spec;
  /// Seed for probabilistic clauses and bit-flip positions.
  u64 seed = 0x6a017;
  /// Virtual seconds after which a hung execute is declared dead.
  /// Overridable per Runtime via RuntimeConfig::watchdog_vt.
  Seconds watchdog_vt = 0.25;

  [[nodiscard]] bool enabled() const { return !spec.empty(); }
};

class FaultInjector {
 public:
  enum class Boundary : u8 { kTransfer, kExecute, kReadback };

  /// What the device should do at a boundary: proceed (kOk, possibly with
  /// extra modelled latency from a sub-watchdog hang), or fail with the
  /// given code. corrupt_bit picks the flipped bit for kDataCorruption.
  struct Decision {
    StatusCode code = StatusCode::kOk;
    Seconds extra_latency = 0;
    u64 corrupt_bit = 0;
  };

  /// Parses the spec; throws InvalidArgument on grammar errors (this runs
  /// on the caller's thread at Runtime construction, never on a worker).
  FaultInjector(const FaultConfig& config, usize num_devices);

  /// Called by Device at each fallible boundary. Advances the device's
  /// schedule position and returns the scheduled decision. Thread-safe.
  /// `watchdog_clamp` (>= 0) caps the effective watchdog for this call --
  /// the op's remaining deadline budget. A hang that outlives the clamp
  /// but not the configured watchdog is a deadline expiry
  /// (kDeadlineExceeded), not a device fault; either way no more than the
  /// clamped interval is billed. Negative = no clamp.
  GPTPU_VIRTUAL_DOMAIN
  Decision consult(u32 device, Boundary boundary,
                   Seconds watchdog_clamp = -1) GPTPU_EXCLUDES(mu_);

  /// Total faults fired so far (also published as the fault.injected
  /// counter).
  [[nodiscard]] u64 injected() const GPTPU_EXCLUDES(mu_);

  [[nodiscard]] Seconds watchdog() const { return config_.watchdog_vt; }
  [[nodiscard]] const FaultConfig& config() const { return config_; }

  /// Rewinds every schedule to its initial state (counters, loss flags,
  /// rng streams) so a reset Runtime replays the same fault sequence.
  void reset() GPTPU_EXCLUDES(mu_);

  /// Process-wide default consulted by Runtime when its own config has no
  /// spec -- how gptpu_cli's --faults flag reaches the Runtimes that app
  /// helpers construct internally.
  static void set_process_default(const FaultConfig& config);
  [[nodiscard]] static FaultConfig process_default();

 private:
  enum class Kind : u8 { kTransient, kHang, kLoss, kBitFlip };

  struct Clause {
    Kind kind = Kind::kTransient;
    u64 at = 0;        // first matching boundary op (per-kind counter)
    u64 count = 1;     // how many consecutive ops fail
    double prob = -1;  // transient: per-op probability; <0 = positional
    Seconds hang_vt = 0;
  };

  struct DeviceSchedule {
    std::vector<Clause> clauses;
    u64 ops[3] = {0, 0, 0};  // per-Boundary counters
    u64 total_ops = 0;
    bool lost = false;
    Rng rng{0};
  };

  void seed_schedules() GPTPU_REQUIRES(mu_);

  const FaultConfig config_;
  mutable Mutex mu_;
  std::vector<DeviceSchedule> devices_ GPTPU_GUARDED_BY(mu_);
  u64 injected_ GPTPU_GUARDED_BY(mu_) = 0;
};

}  // namespace gptpu::sim
