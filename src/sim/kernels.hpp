// Functional (bit-accurate) semantics of the Edge TPU instructions.
//
// Arithmetic follows the hardware contract: int8 operands, exact int32
// accumulation inside one instruction, and requantization of results to
// int8 with the instruction's output scale. Every accuracy number the
// benchmarks report flows through these kernels.
//
// Two implementations live here:
//
//  * The default engine: cache-blocked kernels with contiguous inner
//    loops over i8 x i8 -> i32 accumulators that auto-vectorize, and a
//    precomputed fixed-point requantization plan (quant::Requant) instead
//    of per-element double math. Each entry point optionally stripes its
//    output rows across a ThreadPool; pass nullptr (the default) for a
//    plain serial call. Chunk tasks never block, so striping is safe from
//    the runtime's per-device workers (see ThreadPool::parallel_chunks).
//
//  * kernels::reference: the original scalar triple-nested loops, pinned
//    to non-vectorized code. It is the test oracle -- the engine must be
//    bit-exact against it (tests/test_kernels_equivalence.cpp), which
//    holds by construction because both sides share the same Requant
//    plan for every accumulator -> int8 conversion.
#pragma once

#include <span>

#include "common/matrix.hpp"
#include "isa/instruction.hpp"

namespace gptpu {
class ThreadPool;
}  // namespace gptpu

namespace gptpu::sim::kernels {

/// conv2D (valid padding, stride per `stride`): for each output position,
/// acc = sum over the kernel window of in*k (int32), then
/// q_out = clamp(round(acc / (s_in * s_k) * out_scale)).
///
/// `kernels` holds `bank` filters stacked vertically (bank * kr rows); the
/// per-filter result planes are laid side by side in `out` (each filter
/// contributes a contiguous group of output columns).
void conv2d(MatrixView<const i8> in, float s_in, MatrixView<const i8> kernels,
            float s_k, isa::Stride stride, u16 bank, float out_scale,
            MatrixView<i8> out, ThreadPool* pool = nullptr);

/// conv2D emitting the raw int32 accumulators (wide-output mode; the host
/// dequantizes with 1 / (s_in * s_k)).
void conv2d_wide(MatrixView<const i8> in, MatrixView<const i8> kernels,
                 isa::Stride stride, u16 bank, MatrixView<i32> out,
                 ThreadPool* pool = nullptr);

/// FullyConnected: out = in (MxN) x weights (NxK), int32 accumulation.
void fully_connected(MatrixView<const i8> in, float s_in,
                     MatrixView<const i8> weights, float s_w, float out_scale,
                     MatrixView<i8> out, ThreadPool* pool = nullptr);

/// FullyConnected emitting the raw int32 accumulators.
void fully_connected_wide(MatrixView<const i8> in,
                          MatrixView<const i8> weights, MatrixView<i32> out,
                          ThreadPool* pool = nullptr);

/// add / sub / mul on corresponding value pairs.
void pairwise(isa::Opcode op, MatrixView<const i8> a, float s_a,
              MatrixView<const i8> b, float s_b, float out_scale,
              MatrixView<i8> out, ThreadPool* pool = nullptr);

/// tanh / ReLu element-wise.
void elementwise(isa::Opcode op, MatrixView<const i8> in, float s_in,
                 float out_scale, MatrixView<i8> out,
                 ThreadPool* pool = nullptr);

/// One folded-in stage of a fused chain call (graph-compiler fusion). The
/// stage consumes the previous stage's int8 intermediate exactly as the
/// unfused pipeline would have consumed the landed tensor: dequantize at
/// the previous stage's output scale into float, quantize at `in_scale`,
/// then apply the stage op. Stage ops are shape-preserving.
struct FusedStageArg {
  isa::Opcode op = isa::Opcode::kAdd;  // add/sub/mul/tanh/ReLu
  MatrixView<const i8> operand;        // pairwise stages only
  float operand_scale = 1.0f;          // scale `operand` was quantized at
  bool swapped = false;  // intermediate is the right operand (sub)
  float in_scale = 1.0f;
  float out_scale = 1.0f;
};

/// Fused chain: head op (pairwise or elementwise) followed by up to
/// isa::kMaxFusedStages folded-in stages, all on-chip. Bit-exact against
/// running the unfused chain through the individual kernels with a
/// landing (dequantize-to-float) + re-quantize round trip between ops,
/// because the inter-stage conversion replicates that round trip on a
/// 256-entry table.
void fused_chain(isa::Opcode head, MatrixView<const i8> in0, float s_in0,
                 MatrixView<const i8> in1, float s_in1, float head_out_scale,
                 std::span<const FusedStageArg> stages, MatrixView<i8> out,
                 ThreadPool* pool = nullptr);

/// mean / max matrix-wise reduction to a single int8 value.
[[nodiscard]] i8 reduce(isa::Opcode op, MatrixView<const i8> in, float s_in,
                        float out_scale);

/// crop: copy the window out of `in` (scales may differ; values are
/// rescaled raw -> raw).
void crop(MatrixView<const i8> in, float s_in, isa::Window window,
          float out_scale, MatrixView<i8> out);

/// ext: zero-pad `in` at the bottom/right up to out's shape.
void ext(MatrixView<const i8> in, float s_in, float out_scale,
         MatrixView<i8> out);

/// Requantization helper shared by all kernels:
/// clamp(round(raw * out_scale)) into int8, NaN -> 0.
[[nodiscard]] i8 requantize(double raw, float out_scale);

/// The original scalar kernels, kept as the bit-exactness oracle for the
/// vectorized engine above (and as the baseline the bench_kernels speedup
/// numbers are measured against). Pinned to non-vectorized code on GCC so
/// the comparison stays honest under -march=native.
namespace reference {

void conv2d(MatrixView<const i8> in, float s_in, MatrixView<const i8> kernels,
            float s_k, isa::Stride stride, u16 bank, float out_scale,
            MatrixView<i8> out);

void conv2d_wide(MatrixView<const i8> in, MatrixView<const i8> kernels,
                 isa::Stride stride, u16 bank, MatrixView<i32> out);

void fully_connected(MatrixView<const i8> in, float s_in,
                     MatrixView<const i8> weights, float s_w, float out_scale,
                     MatrixView<i8> out);

void fully_connected_wide(MatrixView<const i8> in,
                          MatrixView<const i8> weights, MatrixView<i32> out);

void pairwise(isa::Opcode op, MatrixView<const i8> a, float s_a,
              MatrixView<const i8> b, float s_b, float out_scale,
              MatrixView<i8> out);

void elementwise(isa::Opcode op, MatrixView<const i8> in, float s_in,
                 float out_scale, MatrixView<i8> out);

void fused_chain(isa::Opcode head, MatrixView<const i8> in0, float s_in0,
                 MatrixView<const i8> in1, float s_in1, float head_out_scale,
                 std::span<const FusedStageArg> stages, MatrixView<i8> out);

[[nodiscard]] i8 reduce(isa::Opcode op, MatrixView<const i8> in, float s_in,
                        float out_scale);

void crop(MatrixView<const i8> in, float s_in, isa::Window window,
          float out_scale, MatrixView<i8> out);

void ext(MatrixView<const i8> in, float s_in, float out_scale,
         MatrixView<i8> out);

}  // namespace reference

}  // namespace gptpu::sim::kernels
