#include "sim/kernels.hpp"

#include <algorithm>
#include <cmath>

namespace gptpu::sim::kernels {

using isa::Opcode;

i8 requantize(double raw, float out_scale) {
  const double q = std::nearbyint(raw * static_cast<double>(out_scale));
  return static_cast<i8>(std::clamp(q, -127.0, 127.0));
}

void conv2d(MatrixView<const i8> in, float s_in, MatrixView<const i8> kernels,
            float s_k, isa::Stride stride, u16 bank, float out_scale,
            MatrixView<i8> out) {
  GPTPU_CHECK(stride.x > 0 && stride.y > 0, "conv2d: zero stride");
  GPTPU_CHECK(bank > 0 && kernels.rows() % bank == 0,
              "conv2d: bank does not divide kernel rows");
  const usize krows = kernels.rows() / bank;
  const usize kcols = kernels.cols();
  GPTPU_CHECK(krows <= in.rows() && kcols <= in.cols(),
              "conv2d: kernel larger than input");
  const usize out_rows = (in.rows() - krows) / stride.y + 1;
  const usize out_cols = (in.cols() - kcols) / stride.x + 1;
  GPTPU_CHECK(out.rows() == out_rows && out.cols() == out_cols * bank,
              "conv2d: bad output shape");
  const double dequant =
      1.0 / (static_cast<double>(s_in) * static_cast<double>(s_k));
  for (usize k = 0; k < bank; ++k) {
    const MatrixView<const i8> kernel =
        kernels.sub(k * krows, 0, {krows, kcols});
    const usize out_col_base = k * out_cols;
    for (usize orow = 0; orow < out_rows; ++orow) {
      const usize r0 = orow * stride.y;
      for (usize ocol = 0; ocol < out_cols; ++ocol) {
        const usize c0 = ocol * stride.x;
        i64 acc = 0;
        for (usize kr = 0; kr < krows; ++kr) {
          const i8* irow = in.row(r0 + kr).data() + c0;
          const i8* krow = kernel.row(kr).data();
          i64 racc = 0;
          for (usize kc = 0; kc < kcols; ++kc) {
            racc += static_cast<i32>(irow[kc]) * static_cast<i32>(krow[kc]);
          }
          acc += racc;
        }
        out(orow, out_col_base + ocol) =
            requantize(static_cast<double>(acc) * dequant, out_scale);
      }
    }
  }
}

void conv2d_wide(MatrixView<const i8> in, MatrixView<const i8> kernels,
                 isa::Stride stride, u16 bank, MatrixView<i32> out) {
  GPTPU_CHECK(stride.x > 0 && stride.y > 0, "conv2d: zero stride");
  GPTPU_CHECK(bank > 0 && kernels.rows() % bank == 0,
              "conv2d: bank does not divide kernel rows");
  const usize krows = kernels.rows() / bank;
  const usize kcols = kernels.cols();
  GPTPU_CHECK(krows <= in.rows() && kcols <= in.cols(),
              "conv2d: kernel larger than input");
  const usize out_rows = (in.rows() - krows) / stride.y + 1;
  const usize out_cols = (in.cols() - kcols) / stride.x + 1;
  GPTPU_CHECK(out.rows() == out_rows && out.cols() == out_cols * bank,
              "conv2d: bad output shape");
  for (usize k = 0; k < bank; ++k) {
    const MatrixView<const i8> kernel =
        kernels.sub(k * krows, 0, {krows, kcols});
    const usize out_col_base = k * out_cols;
    for (usize orow = 0; orow < out_rows; ++orow) {
      const usize r0 = orow * stride.y;
      for (usize ocol = 0; ocol < out_cols; ++ocol) {
        const usize c0 = ocol * stride.x;
        i32 acc = 0;
        for (usize kr = 0; kr < krows; ++kr) {
          const i8* irow = in.row(r0 + kr).data() + c0;
          const i8* krow = kernel.row(kr).data();
          i32 racc = 0;
          for (usize kc = 0; kc < kcols; ++kc) {
            racc += static_cast<i32>(irow[kc]) * static_cast<i32>(krow[kc]);
          }
          acc += racc;
        }
        out(orow, out_col_base + ocol) = acc;
      }
    }
  }
}

void fully_connected_wide(MatrixView<const i8> in,
                          MatrixView<const i8> weights, MatrixView<i32> out) {
  GPTPU_CHECK(in.cols() == weights.rows(), "fully_connected: inner mismatch");
  GPTPU_CHECK(out.rows() == in.rows() && out.cols() == weights.cols(),
              "fully_connected: bad output shape");
  const usize n = in.cols();
  const usize k = weights.cols();
  for (usize r = 0; r < in.rows(); ++r) {
    i32* orow = out.row(r).data();
    std::fill_n(orow, k, 0);
    const i8* irow = in.row(r).data();
    for (usize j = 0; j < n; ++j) {
      const i32 a = irow[j];
      if (a == 0) continue;
      const i8* wrow = weights.row(j).data();
      for (usize c = 0; c < k; ++c) {
        orow[c] += a * static_cast<i32>(wrow[c]);
      }
    }
  }
}

void fully_connected(MatrixView<const i8> in, float s_in,
                     MatrixView<const i8> weights, float s_w, float out_scale,
                     MatrixView<i8> out) {
  GPTPU_CHECK(in.cols() == weights.rows(), "fully_connected: inner mismatch");
  GPTPU_CHECK(out.rows() == in.rows() && out.cols() == weights.cols(),
              "fully_connected: bad output shape");
  const double dequant =
      1.0 / (static_cast<double>(s_in) * static_cast<double>(s_w));
  const usize n = in.cols();
  const usize k = weights.cols();
  std::vector<i64> acc(k);
  for (usize r = 0; r < in.rows(); ++r) {
    std::fill(acc.begin(), acc.end(), 0);
    const i8* irow = in.row(r).data();
    // Loop order (inner over columns of the weight row) keeps both streams
    // sequential, letting the compiler vectorize the int8 x int8 products.
    for (usize j = 0; j < n; ++j) {
      const i32 a = irow[j];
      if (a == 0) continue;
      const i8* wrow = weights.row(j).data();
      for (usize c = 0; c < k; ++c) {
        acc[c] += a * static_cast<i32>(wrow[c]);
      }
    }
    i8* orow = out.row(r).data();
    for (usize c = 0; c < k; ++c) {
      orow[c] = requantize(static_cast<double>(acc[c]) * dequant, out_scale);
    }
  }
}

void pairwise(Opcode op, MatrixView<const i8> a, float s_a,
              MatrixView<const i8> b, float s_b, float out_scale,
              MatrixView<i8> out) {
  GPTPU_CHECK(a.shape() == b.shape() && a.shape() == out.shape(),
              "pairwise: shape mismatch");
  const double inv_a = 1.0 / static_cast<double>(s_a);
  const double inv_b = 1.0 / static_cast<double>(s_b);
  for (usize r = 0; r < a.rows(); ++r) {
    const i8* ra = a.row(r).data();
    const i8* rb = b.row(r).data();
    i8* ro = out.row(r).data();
    for (usize c = 0; c < a.cols(); ++c) {
      const double va = ra[c] * inv_a;
      const double vb = rb[c] * inv_b;
      double raw = 0;
      switch (op) {
        case Opcode::kAdd: raw = va + vb; break;
        case Opcode::kSub: raw = va - vb; break;
        case Opcode::kMul: raw = va * vb; break;
        default: throw InvalidArgument("pairwise: not a pairwise opcode");
      }
      ro[c] = requantize(raw, out_scale);
    }
  }
}

void elementwise(Opcode op, MatrixView<const i8> in, float s_in,
                 float out_scale, MatrixView<i8> out) {
  GPTPU_CHECK(in.shape() == out.shape(), "elementwise: shape mismatch");
  // 256-entry lookup table, exactly how the hardware evaluates activation
  // functions on quantized values.
  std::array<i8, 256> lut{};
  const double inv = 1.0 / static_cast<double>(s_in);
  for (int q = -128; q <= 127; ++q) {
    const double x = q * inv;
    double y = 0;
    switch (op) {
      case Opcode::kTanh: y = std::tanh(x); break;
      case Opcode::kReLu: y = x > 0 ? x : 0; break;
      default: throw InvalidArgument("elementwise: not an elementwise opcode");
    }
    lut[static_cast<usize>(q + 128)] = requantize(y, out_scale);
  }
  for (usize r = 0; r < in.rows(); ++r) {
    const i8* ri = in.row(r).data();
    i8* ro = out.row(r).data();
    for (usize c = 0; c < in.cols(); ++c) {
      ro[c] = lut[static_cast<usize>(static_cast<int>(ri[c]) + 128)];
    }
  }
}

i8 reduce(Opcode op, MatrixView<const i8> in, float s_in, float out_scale) {
  GPTPU_CHECK(in.rows() > 0 && in.cols() > 0, "reduce: empty input");
  const double inv = 1.0 / static_cast<double>(s_in);
  if (op == Opcode::kMax) {
    i8 best = in(0, 0);
    for (usize r = 0; r < in.rows(); ++r) {
      for (i8 v : in.row(r)) best = std::max(best, v);
    }
    return requantize(best * inv, out_scale);
  }
  if (op == Opcode::kMean) {
    i64 acc = 0;
    for (usize r = 0; r < in.rows(); ++r) {
      for (i8 v : in.row(r)) acc += v;
    }
    const double mean =
        static_cast<double>(acc) / static_cast<double>(in.shape().elems());
    return requantize(mean * inv, out_scale);
  }
  throw InvalidArgument("reduce: not a matrix-wise opcode");
}

void crop(MatrixView<const i8> in, float s_in, isa::Window window,
          float out_scale, MatrixView<i8> out) {
  GPTPU_CHECK(window.row0 + window.shape.rows <= in.rows() &&
                  window.col0 + window.shape.cols <= in.cols(),
              "crop: window out of range");
  GPTPU_CHECK(out.shape() == window.shape, "crop: bad output shape");
  const double inv = 1.0 / static_cast<double>(s_in);
  for (usize r = 0; r < window.shape.rows; ++r) {
    const i8* ri = in.row(window.row0 + r).data() + window.col0;
    i8* ro = out.row(r).data();
    for (usize c = 0; c < window.shape.cols; ++c) {
      ro[c] = requantize(ri[c] * inv, out_scale);
    }
  }
}

void ext(MatrixView<const i8> in, float s_in, float out_scale,
         MatrixView<i8> out) {
  GPTPU_CHECK(out.rows() >= in.rows() && out.cols() >= in.cols(),
              "ext: output smaller than input");
  const double inv = 1.0 / static_cast<double>(s_in);
  for (usize r = 0; r < out.rows(); ++r) {
    i8* ro = out.row(r).data();
    if (r < in.rows()) {
      const i8* ri = in.row(r).data();
      usize c = 0;
      for (; c < in.cols(); ++c) ro[c] = requantize(ri[c] * inv, out_scale);
      for (; c < out.cols(); ++c) ro[c] = 0;
    } else {
      std::fill_n(ro, out.cols(), static_cast<i8>(0));
    }
  }
}

}  // namespace gptpu::sim::kernels
