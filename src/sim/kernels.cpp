#include "sim/kernels.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "common/metrics.hpp"
#include "common/thread_pool.hpp"
#include "quant/quantize.hpp"
#include "quant/requant.hpp"
#include "sim/kernel_registry.hpp"

// The specialized elementwise variants replace the scalar 256-entry table
// gather with an in-register byte shuffle where AVX512-VBMI is available.
// Pure re-indexing of the same table, so the output bytes are identical
// on every host; the guard keeps non-x86 builds on the scalar path.
#if defined(__x86_64__) && defined(__AVX512VBMI__) && defined(__AVX512BW__)
#include <immintrin.h>
#define GPTPU_HAVE_VBMI_LUT 1
#else
#define GPTPU_HAVE_VBMI_LUT 0
#endif

// The reference oracle must stay scalar even when this translation unit is
// built with -march=native, or the bench_kernels speedup would compare the
// engine against an auto-vectorized "reference".
#if defined(__GNUC__) && !defined(__clang__)
#define GPTPU_SCALAR_KERNEL \
  __attribute__((optimize("no-tree-vectorize", "no-tree-slp-vectorize")))
#else
#define GPTPU_SCALAR_KERNEL
#endif

namespace gptpu::sim::kernels {

using isa::Opcode;
using quant::Requant;

namespace {

/// Minimum output rows per parallel chunk; smaller matrices run serial.
constexpr usize kRowGrain = 8;

/// i32 accumulators are exact while taps * 127 * 127 fits in int32.
constexpr usize kMaxI32Taps = ((usize{1} << 31) - 1) / (127 * 127);

/// Adds (kInit = false) or initializes (kInit = true) up to four fused
/// kernel taps into a row of i32 accumulators: acc[c] (+)= sum over t of
/// kp[t] * ip[c + t]. Fusing taps amortizes the accumulator load/store
/// traffic, which dominates small-kernel conv2d; initializing on the first
/// group replaces a separate zero-fill pass.
template <bool kInit>
void conv_taps(i32* __restrict acc, const i8* __restrict ip,
               const i8* __restrict kp, usize ntaps, usize n) {
  const i32 k0 = static_cast<i32>(kp[0]);
  const i32 k1 = ntaps > 1 ? static_cast<i32>(kp[1]) : 0;
  const i32 k2 = ntaps > 2 ? static_cast<i32>(kp[2]) : 0;
  const i32 k3 = ntaps > 3 ? static_cast<i32>(kp[3]) : 0;
  switch (ntaps) {
    case 4:
      for (usize c = 0; c < n; ++c) {
        const i32 v = k0 * static_cast<i32>(ip[c]) +
                      k1 * static_cast<i32>(ip[c + 1]) +
                      k2 * static_cast<i32>(ip[c + 2]) +
                      k3 * static_cast<i32>(ip[c + 3]);
        if (kInit) {
          acc[c] = v;
        } else {
          acc[c] += v;
        }
      }
      break;
    case 3:
      for (usize c = 0; c < n; ++c) {
        const i32 v = k0 * static_cast<i32>(ip[c]) +
                      k1 * static_cast<i32>(ip[c + 1]) +
                      k2 * static_cast<i32>(ip[c + 2]);
        if (kInit) {
          acc[c] = v;
        } else {
          acc[c] += v;
        }
      }
      break;
    case 2:
      for (usize c = 0; c < n; ++c) {
        const i32 v =
            k0 * static_cast<i32>(ip[c]) + k1 * static_cast<i32>(ip[c + 1]);
        if (kInit) {
          acc[c] = v;
        } else {
          acc[c] += v;
        }
      }
      break;
    default:
      for (usize c = 0; c < n; ++c) {
        const i32 v = k0 * static_cast<i32>(ip[c]);
        if (kInit) {
          acc[c] = v;
        } else {
          acc[c] += v;
        }
      }
      break;
  }
}

/// One stride.x == 1 conv2d output row: accumulates the whole kernel
/// window into acc[0..out_cols) in tap groups of four. The first group
/// initializes the accumulators, so no zero-fill pass is needed.
void conv_row_i32(MatrixView<const i8> in, MatrixView<const i8> kernel,
                  usize r0, usize krows, usize kcols, i32* acc,
                  usize out_cols) {
  if (krows == 3 && kcols == 3) {
    // Fully fused 3x3 window: one pass, one store per output element
    // instead of three accumulator read-modify-write passes. The most
    // common CNN kernel size, and the shape the paper's conv results
    // center on. Integer adds reassociate exactly, so this stays
    // bit-identical to the tap-group path.
    const i8* __restrict i0 = in.row(r0).data();
    const i8* __restrict i1 = in.row(r0 + 1).data();
    const i8* __restrict i2 = in.row(r0 + 2).data();
    const i8* k0 = kernel.row(0).data();
    const i8* k1 = kernel.row(1).data();
    const i8* k2 = kernel.row(2).data();
    const i32 k00 = k0[0], k01 = k0[1], k02 = k0[2];
    const i32 k10 = k1[0], k11 = k1[1], k12 = k1[2];
    const i32 k20 = k2[0], k21 = k2[1], k22 = k2[2];
    for (usize c = 0; c < out_cols; ++c) {
      acc[c] = k00 * static_cast<i32>(i0[c]) +
               k01 * static_cast<i32>(i0[c + 1]) +
               k02 * static_cast<i32>(i0[c + 2]) +
               k10 * static_cast<i32>(i1[c]) +
               k11 * static_cast<i32>(i1[c + 1]) +
               k12 * static_cast<i32>(i1[c + 2]) +
               k20 * static_cast<i32>(i2[c]) +
               k21 * static_cast<i32>(i2[c + 1]) +
               k22 * static_cast<i32>(i2[c + 2]);
    }
    return;
  }
  bool first = true;
  for (usize kr = 0; kr < krows; ++kr) {
    const i8* irow = in.row(r0 + kr).data();
    const i8* krow = kernel.row(kr).data();
    usize x = 0;
    while (x < kcols) {
      const usize ntaps = std::min<usize>(4, kcols - x);
      if (first) {
        conv_taps<true>(acc, irow + x, krow + x, ntaps, out_cols);
        first = false;
      } else {
        conv_taps<false>(acc, irow + x, krow + x, ntaps, out_cols);
      }
      x += ntaps;
    }
  }
}

/// Requantizes a row of accumulators into int8. The plan is copied to a
/// local so int8 stores through dst cannot alias it; `nosat` selects the
/// clamp-free path when the caller proved |acc| <= presat for the row.
template <typename Acc>
void requant_row(const Requant& rq, bool nosat, const Acc* __restrict acc,
                 i8* __restrict dst, usize n) {
  // Members are hoisted into local scalars: GCC refuses to vectorize a
  // loop whose body re-loads a struct field ("no vectype" for the i64
  // member access), and the i64 multiply below only pays for itself in
  // 8-lane form.
  const Requant p = rq;
  const i64 mult = p.mult;
  const i64 presat = p.presat;
  if (p.saturate_all) {
    for (usize c = 0; c < n; ++c) {
      const Acc a = acc[c];
      dst[c] = a > 0 ? i8{127} : (a < 0 ? i8{-127} : i8{0});
    }
  } else if (nosat) {
    for (usize c = 0; c < n; ++c) {
      dst[c] = quant::round_fixed47_to_i8(static_cast<i64>(acc[c]) * mult);
    }
  } else {
    for (usize c = 0; c < n; ++c) {
      i64 a = static_cast<i64>(acc[c]);
      a = a < -presat ? -presat : (a > presat ? presat : a);
      dst[c] = quant::round_fixed47_to_i8(a * mult);
    }
  }
}

/// Shared add/sub/mul requantization plan. add/sub use two 47-bit
/// fixed-point multipliers (out = round((a * mult_a +- b * mult_b) >> 47));
/// mul folds both dequant scales into one Requant on the int16 product.
/// Factors the fixed-point grid cannot represent (non-finite, or so large
/// a single code saturates) fall back to the original double path; the
/// engine and the reference oracle share this decision, which is what
/// keeps them bit-exact.
struct PairPlan {
  bool fixed = false;
  i64 mult_a = 0;
  i64 mult_b = 0;
  Requant mul_rq;
  double inv_a = 0.0;
  double inv_b = 0.0;
};

PairPlan plan_pairwise(Opcode op, float s_a, float s_b, float out_scale) {
  PairPlan p;
  p.inv_a = 1.0 / static_cast<double>(s_a);
  p.inv_b = 1.0 / static_cast<double>(s_b);
  const double scale = static_cast<double>(out_scale);
  if (op == Opcode::kMul) {
    p.mul_rq = Requant::plan(scale * p.inv_a * p.inv_b);
    p.fixed = true;
    return p;
  }
  const double fa = scale * p.inv_a;
  const double fb = scale * p.inv_b;
  // Both multipliers must fit the grid: 0 < f <= 127.5 bounds each term by
  // 127 * 127.5 * 2^47 < 2^61, so the two-term sum cannot overflow i64.
  if (std::isfinite(fa) && std::isfinite(fb) && fa > 0.0 && fb > 0.0 &&
      fa <= 127.5 && fb <= 127.5) {
    p.fixed = true;
    p.mult_a = std::llround(std::ldexp(fa, Requant::kShift));
    p.mult_b = std::llround(std::ldexp(fb, Requant::kShift));
  }
  return p;
}

/// Per-element pairwise evaluation on the shared plan; the reference
/// oracle calls this directly, the engine inlines the same arithmetic
/// into per-opcode loops.
i8 pairwise_value(Opcode op, const PairPlan& p, i8 a, i8 b, float out_scale) {
  if (p.fixed) {
    switch (op) {
      case Opcode::kAdd:
        return quant::round_fixed47_to_i8(a * p.mult_a + b * p.mult_b);
      case Opcode::kSub:
        return quant::round_fixed47_to_i8(a * p.mult_a - b * p.mult_b);
      default:
        return p.mul_rq.apply(static_cast<i32>(a) * static_cast<i32>(b));
    }
  }
  const double va = a * p.inv_a;
  const double vb = b * p.inv_b;
  const double raw = op == Opcode::kAdd ? va + vb : va - vb;
  return requantize(raw, out_scale);
}

/// 256-entry table of requantize(q / s_in, out_scale) for q in
/// [-128, 127] -- the hardware's evaluation strategy for per-value ops,
/// and byte-identical to requantizing each element individually.
std::array<i8, 256> rescale_lut(float s_in, float out_scale) {
  std::array<i8, 256> lut{};
  const double inv = 1.0 / static_cast<double>(s_in);
  for (int q = -128; q <= 127; ++q) {
    lut[static_cast<usize>(q + 128)] = requantize(q * inv, out_scale);
  }
  return lut;
}

void lut_map_row(const std::array<i8, 256>& lut, const i8* __restrict src,
                 i8* __restrict dst, usize n) {
  // Centered table pointer: signed codes index it directly, dropping the
  // per-element +128 bias from the gather's address arithmetic. The body
  // is unrolled eight wide so the independent table loads pipeline
  // instead of serializing on one load -> store per iteration; the table
  // itself (256 B) lives in four cache lines.
  const i8* __restrict t = lut.data() + 128;
  usize c = 0;
  for (; c + 8 <= n; c += 8) {
    const i8 v0 = t[src[c + 0]];
    const i8 v1 = t[src[c + 1]];
    const i8 v2 = t[src[c + 2]];
    const i8 v3 = t[src[c + 3]];
    const i8 v4 = t[src[c + 4]];
    const i8 v5 = t[src[c + 5]];
    const i8 v6 = t[src[c + 6]];
    const i8 v7 = t[src[c + 7]];
    dst[c + 0] = v0;
    dst[c + 1] = v1;
    dst[c + 2] = v2;
    dst[c + 3] = v3;
    dst[c + 4] = v4;
    dst[c + 5] = v5;
    dst[c + 6] = v6;
    dst[c + 7] = v7;
  }
  for (; c < n; ++c) {
    dst[c] = t[src[c]];
  }
}

/// Column-strip width for blocked LUT maps: strips of source and
/// destination codes stay L1-resident while a band of rows streams
/// through, so wide matrices do not thrash the gather's working set.
constexpr usize kLutStripCols = 16384;

/// Counts engine tile calls whose requant plan saturates every nonzero
/// accumulator (factor > 127.5): such a tile comes out all +-127/0, so a
/// nonzero count flags a badly calibrated scale chain. Called once per
/// engine entry, never by the reference oracle (which would double-count
/// the equivalence tests).
void note_requant_saturation(const Requant& rq) {
  if (!rq.saturate_all) return;
  static metrics::Counter& saturated =
      metrics::MetricRegistry::global().counter(
          "quant.requant_saturated_tiles");
  saturated.add(1);
}

}  // namespace

i8 requantize(double raw, float out_scale) {
  // saturate_i8 owns the NaN->0 mapping and the clamp; nearbyint
  // (round half to even) is the rounding rule for output requantization.
  return quant::saturate_i8(
      std::nearbyint(raw * static_cast<double>(out_scale)));
}

void conv2d(MatrixView<const i8> in, float s_in, MatrixView<const i8> kernels,
            float s_k, isa::Stride stride, u16 bank, float out_scale,
            MatrixView<i8> out, ThreadPool* pool) {
  GPTPU_CHECK(stride.x > 0 && stride.y > 0, "conv2d: zero stride");
  GPTPU_CHECK(bank > 0 && kernels.rows() % bank == 0,
              "conv2d: bank does not divide kernel rows");
  const usize krows = kernels.rows() / bank;
  const usize kcols = kernels.cols();
  GPTPU_CHECK(krows <= in.rows() && kcols <= in.cols(),
              "conv2d: kernel larger than input");
  const usize out_rows = (in.rows() - krows) / stride.y + 1;
  const usize out_cols = (in.cols() - kcols) / stride.x + 1;
  GPTPU_CHECK(out.rows() == out_rows && out.cols() == out_cols * bank,
              "conv2d: bad output shape");
  const double factor = static_cast<double>(out_scale) /
                        (static_cast<double>(s_in) * static_cast<double>(s_k));
  const Requant rq = Requant::plan(factor);
  note_requant_saturation(rq);
  const usize taps = krows * kcols;
  const bool nosat = rq.covers(static_cast<i64>(taps) * (127 * 127));
  if (stride.x == 1 && taps > 0 && taps <= kMaxI32Taps) {
    ThreadPool::parallel_chunks(
        pool, out_rows, kRowGrain, [&](usize rbegin, usize rend) {
          std::vector<i32> acc(out_cols);
          for (usize k = 0; k < bank; ++k) {
            const MatrixView<const i8> kernel =
                kernels.sub(k * krows, 0, {krows, kcols});
            const usize out_col_base = k * out_cols;
            for (usize orow = rbegin; orow < rend; ++orow) {
              conv_row_i32(in, kernel, orow * stride.y, krows, kcols,
                           acc.data(), out_cols);
              requant_row(rq, nosat, acc.data(), &out(orow, out_col_base),
                          out_cols);
            }
          }
        });
    return;
  }
  // Strided-x / oversized-kernel path: per-output i64 accumulation with
  // the same requantization plan.
  ThreadPool::parallel_chunks(
      pool, out_rows, kRowGrain, [&](usize rbegin, usize rend) {
        for (usize k = 0; k < bank; ++k) {
          const MatrixView<const i8> kernel =
              kernels.sub(k * krows, 0, {krows, kcols});
          const usize out_col_base = k * out_cols;
          for (usize orow = rbegin; orow < rend; ++orow) {
            const usize r0 = orow * stride.y;
            for (usize ocol = 0; ocol < out_cols; ++ocol) {
              const usize c0 = ocol * stride.x;
              i64 acc = 0;
              for (usize kr = 0; kr < krows; ++kr) {
                const i8* irow = in.row(r0 + kr).data() + c0;
                const i8* krow = kernel.row(kr).data();
                i64 racc = 0;
                for (usize kc = 0; kc < kcols; ++kc) {
                  racc +=
                      static_cast<i32>(irow[kc]) * static_cast<i32>(krow[kc]);
                }
                acc += racc;
              }
              out(orow, out_col_base + ocol) = rq.apply(acc);
            }
          }
        }
      });
}

void conv2d_wide(MatrixView<const i8> in, MatrixView<const i8> kernels,
                 isa::Stride stride, u16 bank, MatrixView<i32> out,
                 ThreadPool* pool) {
  GPTPU_CHECK(stride.x > 0 && stride.y > 0, "conv2d: zero stride");
  GPTPU_CHECK(bank > 0 && kernels.rows() % bank == 0,
              "conv2d: bank does not divide kernel rows");
  const usize krows = kernels.rows() / bank;
  const usize kcols = kernels.cols();
  GPTPU_CHECK(krows <= in.rows() && kcols <= in.cols(),
              "conv2d: kernel larger than input");
  const usize out_rows = (in.rows() - krows) / stride.y + 1;
  const usize out_cols = (in.cols() - kcols) / stride.x + 1;
  GPTPU_CHECK(out.rows() == out_rows && out.cols() == out_cols * bank,
              "conv2d: bad output shape");
  const usize taps = krows * kcols;
  if (stride.x == 1 && taps > 0) {
    // Accumulate straight into the i32 output row (same width as the
    // hardware's wide mode, so overflow behavior matches the scalar code).
    ThreadPool::parallel_chunks(
        pool, out_rows, kRowGrain, [&](usize rbegin, usize rend) {
          for (usize k = 0; k < bank; ++k) {
            const MatrixView<const i8> kernel =
                kernels.sub(k * krows, 0, {krows, kcols});
            const usize out_col_base = k * out_cols;
            for (usize orow = rbegin; orow < rend; ++orow) {
              conv_row_i32(in, kernel, orow * stride.y, krows, kcols,
                           &out(orow, out_col_base), out_cols);
            }
          }
        });
    return;
  }
  ThreadPool::parallel_chunks(
      pool, out_rows, kRowGrain, [&](usize rbegin, usize rend) {
        for (usize k = 0; k < bank; ++k) {
          const MatrixView<const i8> kernel =
              kernels.sub(k * krows, 0, {krows, kcols});
          const usize out_col_base = k * out_cols;
          for (usize orow = rbegin; orow < rend; ++orow) {
            const usize r0 = orow * stride.y;
            for (usize ocol = 0; ocol < out_cols; ++ocol) {
              const usize c0 = ocol * stride.x;
              i32 acc = 0;
              for (usize kr = 0; kr < krows; ++kr) {
                const i8* irow = in.row(r0 + kr).data() + c0;
                const i8* krow = kernel.row(kr).data();
                i32 racc = 0;
                for (usize kc = 0; kc < kcols; ++kc) {
                  racc +=
                      static_cast<i32>(irow[kc]) * static_cast<i32>(krow[kc]);
                }
                acc += racc;
              }
              out(orow, out_col_base + ocol) = acc;
            }
          }
        }
      });
}

void fully_connected_wide(MatrixView<const i8> in,
                          MatrixView<const i8> weights, MatrixView<i32> out,
                          ThreadPool* pool) {
  GPTPU_CHECK(in.cols() == weights.rows(), "fully_connected: inner mismatch");
  GPTPU_CHECK(out.rows() == in.rows() && out.cols() == weights.cols(),
              "fully_connected: bad output shape");
  const usize n = in.cols();
  const usize k = weights.cols();
  ThreadPool::parallel_chunks(
      pool, in.rows(), 4, [&](usize rbegin, usize rend) {
        for (usize r = rbegin; r < rend; ++r) {
          i32* __restrict orow = out.row(r).data();
          std::fill_n(orow, k, 0);
          const i8* irow = in.row(r).data();
          // Rank-1 updates: inner loop walks one weight row and the output
          // row contiguously, which vectorizes; zero input codes skip the
          // whole row.
          for (usize j = 0; j < n; ++j) {
            const i32 a = irow[j];
            if (a == 0) continue;
            const i8* __restrict wrow = weights.row(j).data();
            for (usize c = 0; c < k; ++c) {
              orow[c] += a * static_cast<i32>(wrow[c]);
            }
          }
        }
      });
}

void fully_connected(MatrixView<const i8> in, float s_in,
                     MatrixView<const i8> weights, float s_w, float out_scale,
                     MatrixView<i8> out, ThreadPool* pool) {
  GPTPU_CHECK(in.cols() == weights.rows(), "fully_connected: inner mismatch");
  GPTPU_CHECK(out.rows() == in.rows() && out.cols() == weights.cols(),
              "fully_connected: bad output shape");
  const double factor = static_cast<double>(out_scale) /
                        (static_cast<double>(s_in) * static_cast<double>(s_w));
  const Requant rq = Requant::plan(factor);
  note_requant_saturation(rq);
  const usize n = in.cols();
  const usize k = weights.cols();
  const bool nosat = rq.covers(static_cast<i64>(n) * (127 * 127));
  if (n <= kMaxI32Taps) {
    ThreadPool::parallel_chunks(
        pool, in.rows(), 4, [&](usize rbegin, usize rend) {
          std::vector<i32> acc(k);
          for (usize r = rbegin; r < rend; ++r) {
            std::fill(acc.begin(), acc.end(), 0);
            const i8* irow = in.row(r).data();
            i32* __restrict accp = acc.data();
            for (usize j = 0; j < n; ++j) {
              const i32 a = irow[j];
              if (a == 0) continue;
              const i8* __restrict wrow = weights.row(j).data();
              for (usize c = 0; c < k; ++c) {
                accp[c] += a * static_cast<i32>(wrow[c]);
              }
            }
            requant_row(rq, nosat, accp, out.row(r).data(), k);
          }
        });
    return;
  }
  // Inner dimension too long for exact i32 accumulation: fall back to i64.
  ThreadPool::parallel_chunks(
      pool, in.rows(), 4, [&](usize rbegin, usize rend) {
        std::vector<i64> acc(k);
        for (usize r = rbegin; r < rend; ++r) {
          std::fill(acc.begin(), acc.end(), 0);
          const i8* irow = in.row(r).data();
          i64* __restrict accp = acc.data();
          for (usize j = 0; j < n; ++j) {
            const i32 a = irow[j];
            if (a == 0) continue;
            const i8* __restrict wrow = weights.row(j).data();
            for (usize c = 0; c < k; ++c) {
              accp[c] += a * static_cast<i32>(wrow[c]);
            }
          }
          requant_row(rq, nosat, accp, out.row(r).data(), k);
        }
      });
}

void pairwise(Opcode op, MatrixView<const i8> a, float s_a,
              MatrixView<const i8> b, float s_b, float out_scale,
              MatrixView<i8> out, ThreadPool* pool) {
  GPTPU_CHECK(a.shape() == b.shape() && a.shape() == out.shape(),
              "pairwise: shape mismatch");
  if (op != Opcode::kAdd && op != Opcode::kSub && op != Opcode::kMul) {
    throw InvalidArgument("pairwise: not a pairwise opcode");
  }
  const PairPlan pp = plan_pairwise(op, s_a, s_b, out_scale);
  if (op == Opcode::kMul) note_requant_saturation(pp.mul_rq);
  const usize cols = a.cols();
  ThreadPool::parallel_chunks(
      pool, a.rows(), kRowGrain, [&](usize rbegin, usize rend) {
        const PairPlan p = pp;  // local copy: i8 stores cannot alias it
        const usize n = cols;   // ditto for the captured loop bound
        for (usize r = rbegin; r < rend; ++r) {
          const i8* __restrict ra = a.row(r).data();
          const i8* __restrict rb = b.row(r).data();
          i8* __restrict ro = out.row(r).data();
          if (!p.fixed) {
            for (usize c = 0; c < n; ++c) {
              ro[c] = pairwise_value(op, p, ra[c], rb[c], out_scale);
            }
          } else if (op == Opcode::kAdd) {
            const i64 ma = p.mult_a, mb = p.mult_b;
            for (usize c = 0; c < n; ++c) {
              ro[c] = quant::round_fixed47_to_i8(ra[c] * ma + rb[c] * mb);
            }
          } else if (op == Opcode::kSub) {
            const i64 ma = p.mult_a, mb = p.mult_b;
            for (usize c = 0; c < n; ++c) {
              ro[c] = quant::round_fixed47_to_i8(ra[c] * ma - rb[c] * mb);
            }
          } else {
            // mul: |a * b| <= 127^2, so when the plan covers that bound
            // the presat clamp drops out; all three sub-cases keep the
            // plan in scalars (member loads block vectorization, as in
            // requant_row) and match mul_rq.apply() exactly.
            const Requant rq = p.mul_rq;
            const i64 mult = rq.mult, presat = rq.presat;
            if (rq.saturate_all) {
              for (usize c = 0; c < n; ++c) {
                const i32 v =
                    static_cast<i32>(ra[c]) * static_cast<i32>(rb[c]);
                ro[c] = v > 0 ? i8{127} : (v < 0 ? i8{-127} : i8{0});
              }
            } else if (rq.covers(127 * 127)) {
              for (usize c = 0; c < n; ++c) {
                const i64 v =
                    static_cast<i32>(ra[c]) * static_cast<i32>(rb[c]);
                ro[c] = quant::round_fixed47_to_i8(v * mult);
              }
            } else {
              for (usize c = 0; c < n; ++c) {
                i64 v = static_cast<i32>(ra[c]) * static_cast<i32>(rb[c]);
                v = v < -presat ? -presat : (v > presat ? presat : v);
                ro[c] = quant::round_fixed47_to_i8(v * mult);
              }
            }
          }
        }
      });
}

namespace {

/// 256-entry lookup table, exactly how the hardware evaluates activation
/// functions on quantized values.
std::array<i8, 256> build_activation_lut(Opcode op, float s_in,
                                         float out_scale) {
  std::array<i8, 256> lut{};
  const double inv = 1.0 / static_cast<double>(s_in);
  for (int q = -128; q <= 127; ++q) {
    const double x = q * inv;
    double y = 0;
    switch (op) {
      case Opcode::kTanh: y = std::tanh(x); break;
      case Opcode::kReLu: y = x > 0 ? x : 0; break;
      default: throw InvalidArgument("elementwise: not an elementwise opcode");
    }
    lut[static_cast<usize>(q + 128)] = requantize(y, out_scale);
  }
  return lut;
}

/// Memoized per-(kind, scale-pair) i8 LUTs (engine only; the reference
/// oracle rebuilds per call). Iterative workloads re-issue the same
/// per-value ops with identical scales every epoch, and the 256 double /
/// libm evaluations dominate the per-call cost for small tiles. One
/// keyed cache serves every LUT kind -- tanh, ReLu, and the crop/ext
/// rescale table -- so adding a kind is a slot, not a new cache. The key
/// is the exact bit pattern of (s_in, out_scale), so a hit is
/// bit-identical to a rebuild by construction; returned by value so
/// entries can be dropped freely.
enum LutKind : usize { kLutTanh = 0, kLutReLu, kLutRescale, kNumLutKinds };

std::array<i8, 256> memoized_lut(LutKind kind, float s_in, float out_scale,
                                 std::array<i8, 256> (*build)(float, float)) {
  struct LutCache {
    Mutex mu;
    std::unordered_map<u64, std::array<i8, 256>>
        map[kNumLutKinds] GPTPU_GUARDED_BY(mu);
  };
  constexpr usize kMaxEntries = 4096;  // 1 MiB bound per kind
  static LutCache cache;
  u32 in_bits;
  u32 out_bits;
  std::memcpy(&in_bits, &s_in, sizeof(in_bits));
  std::memcpy(&out_bits, &out_scale, sizeof(out_bits));
  const u64 key = (static_cast<u64>(in_bits) << 32) | out_bits;

  MutexLock lock(cache.mu);
  auto& map = cache.map[kind];
  const auto it = map.find(key);
  if (it != map.end()) return it->second;
  if (map.size() >= kMaxEntries) map.clear();
  return map.emplace(key, build(s_in, out_scale)).first->second;
}

std::array<i8, 256> activation_lut(Opcode op, float s_in, float out_scale) {
  if (op == Opcode::kTanh) {
    return memoized_lut(kLutTanh, s_in, out_scale, [](float si, float so) {
      return build_activation_lut(Opcode::kTanh, si, so);
    });
  }
  return memoized_lut(kLutReLu, s_in, out_scale, [](float si, float so) {
    return build_activation_lut(Opcode::kReLu, si, so);
  });
}

std::array<i8, 256> rescale_lut_memo(float s_in, float out_scale) {
  return memoized_lut(kLutRescale, s_in, out_scale, &rescale_lut);
}

/// 256-entry table of the unfused inter-op round trip a fused stage
/// replaces: land the int8 intermediate exactly like Runtime::land_result
/// (dequantize in double at the producing instruction's output scale,
/// narrow to float) and re-quantize at the consuming stage's input scale
/// exactly like input staging (quant::quantize_value). Evaluating it per
/// code is byte-identical to performing the round trip per element, which
/// is what makes fused execution bit-exact versus the unfused chain.
std::array<i8, 256> landing_lut(float s_prev, float s_next) {
  std::array<i8, 256> lut{};
  const double inv = 1.0 / static_cast<double>(s_prev);
  for (int q = -128; q <= 127; ++q) {
    const float landed = static_cast<float>(q * inv);
    lut[static_cast<usize>(q + 128)] = quant::quantize_value(landed, s_next);
  }
  return lut;
}

void check_fused_chain(Opcode head, MatrixView<const i8> in0,
                       MatrixView<const i8> in1,
                       std::span<const FusedStageArg> stages,
                       MatrixView<i8> out) {
  const isa::OpClass head_class = op_class(head);
  if (head_class != isa::OpClass::kPairwise &&
      head_class != isa::OpClass::kElementwise) {
    throw InvalidArgument("fused_chain: head must be pairwise or elementwise");
  }
  GPTPU_CHECK(in0.shape() == out.shape(), "fused_chain: shape mismatch");
  if (head_class == isa::OpClass::kPairwise) {
    GPTPU_CHECK(in1.shape() == out.shape(), "fused_chain: shape mismatch");
  }
  GPTPU_CHECK(stages.size() <= isa::kMaxFusedStages,
              "fused_chain: too many stages");
  for (const FusedStageArg& st : stages) {
    const isa::OpClass c = op_class(st.op);
    if (c != isa::OpClass::kPairwise && c != isa::OpClass::kElementwise) {
      throw InvalidArgument("fused_chain: stage must be pairwise/elementwise");
    }
    if (c == isa::OpClass::kPairwise) {
      GPTPU_CHECK(st.operand.shape() == out.shape(),
                  "fused_chain: stage operand shape mismatch");
    }
  }
}

}  // namespace

void fused_chain(Opcode head, MatrixView<const i8> in0, float s_in0,
                 MatrixView<const i8> in1, float s_in1, float head_out_scale,
                 std::span<const FusedStageArg> stages, MatrixView<i8> out,
                 ThreadPool* pool) {
  check_fused_chain(head, in0, in1, stages, out);
  const Shape2D shape = out.shape();
  // Ping-pong intermediates plus one landing buffer for pairwise stages.
  // All of it is on-chip state in the modelled machine; the whole point of
  // the fused instruction is that none of it crosses the link.
  const bool any_pairwise_stage =
      std::any_of(stages.begin(), stages.end(), [](const FusedStageArg& st) {
        return op_class(st.op) == isa::OpClass::kPairwise;
      });
  Matrix<i8> ping(stages.empty() ? Shape2D{} : shape);
  Matrix<i8> pong(stages.size() > 1 ? shape : Shape2D{});
  Matrix<i8> landed(any_pairwise_stage ? shape : Shape2D{});
  MatrixView<i8> cur = stages.empty() ? out : ping.view();
  if (op_class(head) == isa::OpClass::kElementwise) {
    elementwise(head, in0, s_in0, head_out_scale, cur, pool);
  } else {
    pairwise(head, in0, s_in0, in1, s_in1, head_out_scale, cur, pool);
  }
  float prev_scale = head_out_scale;
  for (usize s = 0; s < stages.size(); ++s) {
    const FusedStageArg& st = stages[s];
    const bool last = s + 1 == stages.size();
    MatrixView<i8> dst =
        last ? out : (s % 2 == 0 ? pong.view() : ping.view());
    const std::array<i8, 256> land = landing_lut(prev_scale, st.in_scale);
    if (op_class(st.op) == isa::OpClass::kElementwise) {
      // Two pure per-value maps (landing requant, activation) compose
      // into a single gather table.
      const std::array<i8, 256> act =
          activation_lut(st.op, st.in_scale, st.out_scale);
      std::array<i8, 256> composed{};
      for (usize q = 0; q < 256; ++q) {
        composed[q] =
            act[static_cast<usize>(static_cast<int>(land[q]) + 128)];
      }
      const MatrixView<const i8> src = cur;
      ThreadPool::parallel_chunks(
          pool, shape.rows, kRowGrain, [&](usize rbegin, usize rend) {
            for (usize r = rbegin; r < rend; ++r) {
              lut_map_row(composed, src.row(r).data(), dst.row(r).data(),
                          shape.cols);
            }
          });
    } else {
      const MatrixView<const i8> src = cur;
      const MatrixView<i8> landed_v = landed.view();
      ThreadPool::parallel_chunks(
          pool, shape.rows, kRowGrain, [&](usize rbegin, usize rend) {
            for (usize r = rbegin; r < rend; ++r) {
              lut_map_row(land, src.row(r).data(), landed_v.row(r).data(),
                          shape.cols);
            }
          });
      const MatrixView<const i8> inter = landed.view();
      if (st.swapped) {
        pairwise(st.op, st.operand, st.operand_scale, inter, st.in_scale,
                 st.out_scale, dst, pool);
      } else {
        pairwise(st.op, inter, st.in_scale, st.operand, st.operand_scale,
                 st.out_scale, dst, pool);
      }
    }
    cur = dst;
    prev_scale = st.out_scale;
  }
}

void elementwise(Opcode op, MatrixView<const i8> in, float s_in,
                 float out_scale, MatrixView<i8> out, ThreadPool* pool) {
  GPTPU_CHECK(in.shape() == out.shape(), "elementwise: shape mismatch");
  if (op != Opcode::kTanh && op != Opcode::kReLu) {
    throw InvalidArgument("elementwise: not an elementwise opcode");
  }
  const std::array<i8, 256> lut = activation_lut(op, s_in, out_scale);
  const usize cols = in.cols();
  ThreadPool::parallel_chunks(
      pool, in.rows(), kRowGrain, [&](usize rbegin, usize rend) {
        // Cache-blocked strips: walk the row band one column strip at a
        // time so each strip's load/store footprint stays in L1.
        for (usize c0 = 0; c0 < cols; c0 += kLutStripCols) {
          const usize len = std::min(kLutStripCols, cols - c0);
          for (usize r = rbegin; r < rend; ++r) {
            lut_map_row(lut, in.row(r).data() + c0, out.row(r).data() + c0,
                        len);
          }
        }
      });
}

i8 reduce(Opcode op, MatrixView<const i8> in, float s_in, float out_scale) {
  GPTPU_CHECK(in.rows() > 0 && in.cols() > 0, "reduce: empty input");
  const double inv = 1.0 / static_cast<double>(s_in);
  if (op == Opcode::kMax) {
    i8 best = in(0, 0);
    for (usize r = 0; r < in.rows(); ++r) {
      const i8* ri = in.row(r).data();
      for (usize c = 0; c < in.cols(); ++c) best = std::max(best, ri[c]);
    }
    return requantize(best * inv, out_scale);
  }
  if (op == Opcode::kMean) {
    i64 acc = 0;
    for (usize r = 0; r < in.rows(); ++r) {
      const i8* ri = in.row(r).data();
      i64 racc = 0;
      for (usize c = 0; c < in.cols(); ++c) racc += ri[c];
      acc += racc;
    }
    const double mean =
        static_cast<double>(acc) / static_cast<double>(in.shape().elems());
    return requantize(mean * inv, out_scale);
  }
  throw InvalidArgument("reduce: not a matrix-wise opcode");
}

void crop(MatrixView<const i8> in, float s_in, isa::Window window,
          float out_scale, MatrixView<i8> out) {
  GPTPU_CHECK(window.row0 + window.shape.rows <= in.rows() &&
                  window.col0 + window.shape.cols <= in.cols(),
              "crop: window out of range");
  GPTPU_CHECK(out.shape() == window.shape, "crop: bad output shape");
  const std::array<i8, 256> lut = rescale_lut_memo(s_in, out_scale);
  for (usize r = 0; r < window.shape.rows; ++r) {
    lut_map_row(lut, in.row(window.row0 + r).data() + window.col0,
                out.row(r).data(), window.shape.cols);
  }
}

void ext(MatrixView<const i8> in, float s_in, float out_scale,
         MatrixView<i8> out) {
  GPTPU_CHECK(out.rows() >= in.rows() && out.cols() >= in.cols(),
              "ext: output smaller than input");
  const std::array<i8, 256> lut = rescale_lut_memo(s_in, out_scale);
  for (usize r = 0; r < out.rows(); ++r) {
    i8* ro = out.row(r).data();
    if (r < in.rows()) {
      lut_map_row(lut, in.row(r).data(), ro, in.cols());
      std::fill(ro + in.cols(), ro + out.cols(), static_cast<i8>(0));
    } else {
      std::fill_n(ro, out.cols(), static_cast<i8>(0));
    }
  }
}

ScaleConfig classify_scale_config(Opcode op, float s_in0, float s_in1,
                                  float out_scale, bool wide) {
  switch (isa::op_class(op)) {
    case isa::OpClass::kArithmetic: {
      if (wide) return ScaleConfig::kWide;
      const double factor =
          static_cast<double>(out_scale) /
          (static_cast<double>(s_in0) * static_cast<double>(s_in1));
      return Requant::plan(factor).saturate_all ? ScaleConfig::kSaturating
                                                : ScaleConfig::kFixedGrid;
    }
    case isa::OpClass::kPairwise: {
      const PairPlan p = plan_pairwise(op, s_in0, s_in1, out_scale);
      if (!p.fixed) return ScaleConfig::kDoubleFallback;
      if (op == Opcode::kMul && p.mul_rq.saturate_all) {
        return ScaleConfig::kSaturating;
      }
      return ScaleConfig::kFixedGrid;
    }
    default:
      // Elementwise / layout / matrix-wise ops evaluate through LUTs or
      // per-value double math that covers every scale.
      return ScaleConfig::kFixedGrid;
  }
}

// ===========================================================================
// Fixed-shape specialized variants (sim::KernelRegistry). Compile-time
// extents let the compiler fully unroll tap loops and emit exact-width
// vector loops with no remainder handling; every accumulator -> int8
// conversion goes through the same Requant / PairPlan construction as the
// generic engine above, which is what keeps the variants bit-exact
// against kernels::reference. KernelRegistry::run verifies the shape
// class before dispatching here; the GPTPU_CHECKs re-assert the
// contract.
// ===========================================================================

namespace spec {

namespace {

/// One fixed-extent conv2d tap row: acc[c] (+)= sum_t kv[t] * ip[c + t].
/// kK and kN are compile-time, so the tap loop unrolls flat and the
/// column loop vectorizes at its exact trip count.
template <usize kK, usize kN, bool kInit>
void conv_row_taps_fixed(const i8* __restrict ip, const i8* kp,
                         i32* __restrict acc) {
  i32 kv[kK];
  for (usize t = 0; t < kK; ++t) kv[t] = static_cast<i32>(kp[t]);
  for (usize c = 0; c < kN; ++c) {
    i32 v = 0;
    for (usize t = 0; t < kK; ++t) {
      v += kv[t] * static_cast<i32>(ip[c + t]);
    }
    if (kInit) {
      acc[c] = v;
    } else {
      acc[c] += v;
    }
  }
}

template <usize kIn, usize kK>
void conv2d_fixed(const KernelArgs& a) {
  constexpr usize kOut = kIn - kK + 1;
  static_assert(kK * kK <= kMaxI32Taps, "i32 accumulation must stay exact");
  GPTPU_CHECK(a.in0.rows() == kIn && a.in0.cols() == kIn && a.bank > 0 &&
                  a.in1.cols() == kK && a.in1.rows() == kK * a.bank &&
                  a.stride.x == 1 && a.stride.y == 1,
              "spec conv2d: shape-class mismatch");
  const usize bank = a.bank;
  if (a.wide) {
    ThreadPool::parallel_chunks(
        a.pool, kOut, kRowGrain, [&](usize rbegin, usize rend) {
          for (usize k = 0; k < bank; ++k) {
            const MatrixView<const i8> kernel =
                a.in1.sub(k * kK, 0, {kK, kK});
            const usize out_col_base = k * kOut;
            for (usize orow = rbegin; orow < rend; ++orow) {
              i32* __restrict acc = &a.wide_out(orow, out_col_base);
              conv_row_taps_fixed<kK, kOut, true>(a.in0.row(orow).data(),
                                                  kernel.row(0).data(), acc);
              for (usize kr = 1; kr < kK; ++kr) {
                conv_row_taps_fixed<kK, kOut, false>(
                    a.in0.row(orow + kr).data(), kernel.row(kr).data(), acc);
              }
            }
          }
        });
    return;
  }
  const double factor =
      static_cast<double>(a.out_scale) /
      (static_cast<double>(a.s_in0) * static_cast<double>(a.s_in1));
  const Requant rq = Requant::plan(factor);
  note_requant_saturation(rq);
  const bool nosat = rq.covers(static_cast<i64>(kK * kK) * (127 * 127));
  ThreadPool::parallel_chunks(
      a.pool, kOut, kRowGrain, [&](usize rbegin, usize rend) {
        // Stack accumulators: the generic path heap-allocates per chunk.
        alignas(64) i32 acc[kOut];
        for (usize k = 0; k < bank; ++k) {
          const MatrixView<const i8> kernel = a.in1.sub(k * kK, 0, {kK, kK});
          const usize out_col_base = k * kOut;
          for (usize orow = rbegin; orow < rend; ++orow) {
            conv_row_taps_fixed<kK, kOut, true>(a.in0.row(orow).data(),
                                                kernel.row(0).data(), acc);
            for (usize kr = 1; kr < kK; ++kr) {
              conv_row_taps_fixed<kK, kOut, false>(
                  a.in0.row(orow + kr).data(), kernel.row(kr).data(), acc);
            }
            requant_row(rq, nosat, acc, &a.out(orow, out_col_base), kOut);
          }
        }
      });
}

template <usize kN>
void fully_connected_fixed(const KernelArgs& a) {
  static_assert(kN <= kMaxI32Taps, "i32 accumulation must stay exact");
  GPTPU_CHECK(a.in0.cols() == kN && a.in1.rows() == kN && a.in1.cols() == kN,
              "spec fully_connected: shape-class mismatch");
  const usize m = a.in0.rows();
  if (a.wide) {
    ThreadPool::parallel_chunks(a.pool, m, 4, [&](usize rbegin, usize rend) {
      for (usize r = rbegin; r < rend; ++r) {
        i32* __restrict orow = a.wide_out.row(r).data();
        std::fill_n(orow, kN, 0);
        const i8* irow = a.in0.row(r).data();
        for (usize j = 0; j < kN; ++j) {
          const i32 w = irow[j];
          if (w == 0) continue;
          const i8* __restrict wrow = a.in1.row(j).data();
          for (usize c = 0; c < kN; ++c) {
            orow[c] += w * static_cast<i32>(wrow[c]);
          }
        }
      }
    });
    return;
  }
  const double factor =
      static_cast<double>(a.out_scale) /
      (static_cast<double>(a.s_in0) * static_cast<double>(a.s_in1));
  const Requant rq = Requant::plan(factor);
  note_requant_saturation(rq);
  const bool nosat = rq.covers(static_cast<i64>(kN) * (127 * 127));
  ThreadPool::parallel_chunks(a.pool, m, 4, [&](usize rbegin, usize rend) {
    alignas(64) i32 acc[kN];
    for (usize r = rbegin; r < rend; ++r) {
      for (usize c = 0; c < kN; ++c) acc[c] = 0;
      const i8* irow = a.in0.row(r).data();
      for (usize j = 0; j < kN; ++j) {
        const i32 w = irow[j];
        if (w == 0) continue;
        const i8* __restrict wrow = a.in1.row(j).data();
        for (usize c = 0; c < kN; ++c) {
          acc[c] += w * static_cast<i32>(wrow[c]);
        }
      }
      requant_row(rq, nosat, acc, a.out.row(r).data(), kN);
    }
  });
}

template <usize kN>
void pairwise_fixed(Opcode op, const KernelArgs& a) {
  // Column width is the fixed template parameter; the row count stays
  // runtime-sized (like the fully-connected batch dimension), so one
  // variant serves full tiles and the short edge bands alike.
  GPTPU_CHECK(a.in0.cols() == kN && a.in0.contiguous() &&
                  a.in1.contiguous() && a.out.contiguous(),
              "spec pairwise: shape-class mismatch");
  const PairPlan pp = plan_pairwise(op, a.s_in0, a.s_in1, a.out_scale);
  if (op == Opcode::kMul) note_requant_saturation(pp.mul_rq);
  ThreadPool::parallel_chunks(
      a.pool, a.in0.rows(), kRowGrain, [&](usize rbegin, usize rend) {
        const PairPlan p = pp;  // local copy: i8 stores cannot alias it
        // Contiguous square tiles: the whole row band is one flat span,
        // so a single loop covers it with no per-row pointer setup.
        const usize n = (rend - rbegin) * kN;
        const i8* __restrict ra = a.in0.row(rbegin).data();
        const i8* __restrict rb = a.in1.row(rbegin).data();
        i8* __restrict ro = a.out.row(rbegin).data();
        if (!p.fixed) {
          for (usize c = 0; c < n; ++c) {
            ro[c] = pairwise_value(op, p, ra[c], rb[c], a.out_scale);
          }
        } else if (op == Opcode::kAdd) {
          const i64 ma = p.mult_a, mb = p.mult_b;
          for (usize c = 0; c < n; ++c) {
            ro[c] = quant::round_fixed47_to_i8(ra[c] * ma + rb[c] * mb);
          }
        } else if (op == Opcode::kSub) {
          const i64 ma = p.mult_a, mb = p.mult_b;
          for (usize c = 0; c < n; ++c) {
            ro[c] = quant::round_fixed47_to_i8(ra[c] * ma - rb[c] * mb);
          }
        } else {
          const Requant rq = p.mul_rq;
          const i64 mult = rq.mult, presat = rq.presat;
          if (rq.saturate_all) {
            for (usize c = 0; c < n; ++c) {
              const i32 v = static_cast<i32>(ra[c]) * static_cast<i32>(rb[c]);
              ro[c] = v > 0 ? i8{127} : (v < 0 ? i8{-127} : i8{0});
            }
          } else if (rq.covers(127 * 127)) {
            for (usize c = 0; c < n; ++c) {
              const i64 v = static_cast<i32>(ra[c]) * static_cast<i32>(rb[c]);
              ro[c] = quant::round_fixed47_to_i8(v * mult);
            }
          } else {
            for (usize c = 0; c < n; ++c) {
              i64 v = static_cast<i32>(ra[c]) * static_cast<i32>(rb[c]);
              v = v < -presat ? -presat : (v > presat ? presat : v);
              ro[c] = quant::round_fixed47_to_i8(v * mult);
            }
          }
        }
      });
}

/// Maps a flat span through a 256-entry i8 table. With AVX512-VBMI the
/// whole table lives in four vector registers: two vpermi2b shuffles plus
/// a sign-mask blend replace 64 scalar gathers per step. A pure
/// re-indexing of the same table, so the output bytes are identical to
/// lut_map_row on every host.
void lut_map_span(const std::array<i8, 256>& lut, const i8* __restrict src,
                  i8* __restrict dst, usize n) {
#if GPTPU_HAVE_VBMI_LUT
  const __m512i t0 = _mm512_loadu_si512(lut.data());
  const __m512i t1 = _mm512_loadu_si512(lut.data() + 64);
  const __m512i t2 = _mm512_loadu_si512(lut.data() + 128);
  const __m512i t3 = _mm512_loadu_si512(lut.data() + 192);
  const __m512i bias = _mm512_set1_epi8(static_cast<char>(0x80));
  usize c = 0;
  for (; c + 64 <= n; c += 64) {
    const __m512i v = _mm512_loadu_si512(src + c);
    const __m512i idx = _mm512_xor_si512(v, bias);  // signed code -> 0..255
    const __m512i lo = _mm512_permutex2var_epi8(t0, idx, t1);   // 0..127
    const __m512i hi = _mm512_permutex2var_epi8(t2, idx, t3);   // 128..255
    const __mmask64 upper = _mm512_movepi8_mask(idx);           // idx >= 128
    _mm512_storeu_si512(dst + c, _mm512_mask_blend_epi8(upper, lo, hi));
  }
  lut_map_row(lut, src + c, dst + c, n - c);
#else
  lut_map_row(lut, src, dst, n);
#endif
}

template <usize kN>
void elementwise_fixed(Opcode op, const KernelArgs& a) {
  GPTPU_CHECK(a.in0.cols() == kN && a.in0.contiguous() && a.out.contiguous(),
              "spec elementwise: shape-class mismatch");
  const std::array<i8, 256> lut = activation_lut(op, a.s_in0, a.out_scale);
  ThreadPool::parallel_chunks(
      a.pool, a.in0.rows(), kRowGrain, [&](usize rbegin, usize rend) {
        lut_map_span(lut, a.in0.row(rbegin).data(), a.out.row(rbegin).data(),
                     (rend - rbegin) * kN);
      });
}

}  // namespace

void conv2d_128_k3(Opcode, const KernelArgs& a) { conv2d_fixed<128, 3>(a); }
void conv2d_128_k5(Opcode, const KernelArgs& a) { conv2d_fixed<128, 5>(a); }
void conv2d_128_k7(Opcode, const KernelArgs& a) { conv2d_fixed<128, 7>(a); }
void conv2d_64_k3(Opcode, const KernelArgs& a) { conv2d_fixed<64, 3>(a); }
void conv2d_64_k5(Opcode, const KernelArgs& a) { conv2d_fixed<64, 5>(a); }
void fully_connected_128(Opcode, const KernelArgs& a) {
  fully_connected_fixed<128>(a);
}
void fully_connected_64(Opcode, const KernelArgs& a) {
  fully_connected_fixed<64>(a);
}
void pairwise_128(Opcode op, const KernelArgs& a) { pairwise_fixed<128>(op, a); }
void pairwise_64(Opcode op, const KernelArgs& a) { pairwise_fixed<64>(op, a); }
void elementwise_128(Opcode op, const KernelArgs& a) {
  elementwise_fixed<128>(op, a);
}
void elementwise_64(Opcode op, const KernelArgs& a) {
  elementwise_fixed<64>(op, a);
}

}  // namespace spec

namespace reference {

GPTPU_SCALAR_KERNEL
void conv2d(MatrixView<const i8> in, float s_in, MatrixView<const i8> kernels,
            float s_k, isa::Stride stride, u16 bank, float out_scale,
            MatrixView<i8> out) {
  GPTPU_CHECK(stride.x > 0 && stride.y > 0, "conv2d: zero stride");
  GPTPU_CHECK(bank > 0 && kernels.rows() % bank == 0,
              "conv2d: bank does not divide kernel rows");
  const usize krows = kernels.rows() / bank;
  const usize kcols = kernels.cols();
  GPTPU_CHECK(krows <= in.rows() && kcols <= in.cols(),
              "conv2d: kernel larger than input");
  const usize out_rows = (in.rows() - krows) / stride.y + 1;
  const usize out_cols = (in.cols() - kcols) / stride.x + 1;
  GPTPU_CHECK(out.rows() == out_rows && out.cols() == out_cols * bank,
              "conv2d: bad output shape");
  const double factor = static_cast<double>(out_scale) /
                        (static_cast<double>(s_in) * static_cast<double>(s_k));
  const Requant rq = Requant::plan(factor);
  for (usize k = 0; k < bank; ++k) {
    const MatrixView<const i8> kernel =
        kernels.sub(k * krows, 0, {krows, kcols});
    const usize out_col_base = k * out_cols;
    for (usize orow = 0; orow < out_rows; ++orow) {
      const usize r0 = orow * stride.y;
      for (usize ocol = 0; ocol < out_cols; ++ocol) {
        const usize c0 = ocol * stride.x;
        i64 acc = 0;
        for (usize kr = 0; kr < krows; ++kr) {
          const i8* irow = in.row(r0 + kr).data() + c0;
          const i8* krow = kernel.row(kr).data();
          i64 racc = 0;
          for (usize kc = 0; kc < kcols; ++kc) {
            racc += static_cast<i32>(irow[kc]) * static_cast<i32>(krow[kc]);
          }
          acc += racc;
        }
        out(orow, out_col_base + ocol) = rq.apply(acc);
      }
    }
  }
}

GPTPU_SCALAR_KERNEL
void conv2d_wide(MatrixView<const i8> in, MatrixView<const i8> kernels,
                 isa::Stride stride, u16 bank, MatrixView<i32> out) {
  GPTPU_CHECK(stride.x > 0 && stride.y > 0, "conv2d: zero stride");
  GPTPU_CHECK(bank > 0 && kernels.rows() % bank == 0,
              "conv2d: bank does not divide kernel rows");
  const usize krows = kernels.rows() / bank;
  const usize kcols = kernels.cols();
  GPTPU_CHECK(krows <= in.rows() && kcols <= in.cols(),
              "conv2d: kernel larger than input");
  const usize out_rows = (in.rows() - krows) / stride.y + 1;
  const usize out_cols = (in.cols() - kcols) / stride.x + 1;
  GPTPU_CHECK(out.rows() == out_rows && out.cols() == out_cols * bank,
              "conv2d: bad output shape");
  for (usize k = 0; k < bank; ++k) {
    const MatrixView<const i8> kernel =
        kernels.sub(k * krows, 0, {krows, kcols});
    const usize out_col_base = k * out_cols;
    for (usize orow = 0; orow < out_rows; ++orow) {
      const usize r0 = orow * stride.y;
      for (usize ocol = 0; ocol < out_cols; ++ocol) {
        const usize c0 = ocol * stride.x;
        i32 acc = 0;
        for (usize kr = 0; kr < krows; ++kr) {
          const i8* irow = in.row(r0 + kr).data() + c0;
          const i8* krow = kernel.row(kr).data();
          i32 racc = 0;
          for (usize kc = 0; kc < kcols; ++kc) {
            racc += static_cast<i32>(irow[kc]) * static_cast<i32>(krow[kc]);
          }
          acc += racc;
        }
        out(orow, out_col_base + ocol) = acc;
      }
    }
  }
}

GPTPU_SCALAR_KERNEL
void fully_connected_wide(MatrixView<const i8> in,
                          MatrixView<const i8> weights, MatrixView<i32> out) {
  GPTPU_CHECK(in.cols() == weights.rows(), "fully_connected: inner mismatch");
  GPTPU_CHECK(out.rows() == in.rows() && out.cols() == weights.cols(),
              "fully_connected: bad output shape");
  const usize n = in.cols();
  const usize k = weights.cols();
  for (usize r = 0; r < in.rows(); ++r) {
    i32* orow = out.row(r).data();
    std::fill_n(orow, k, 0);
    const i8* irow = in.row(r).data();
    for (usize j = 0; j < n; ++j) {
      const i32 a = irow[j];
      if (a == 0) continue;
      const i8* wrow = weights.row(j).data();
      for (usize c = 0; c < k; ++c) {
        orow[c] += a * static_cast<i32>(wrow[c]);
      }
    }
  }
}

GPTPU_SCALAR_KERNEL
void fully_connected(MatrixView<const i8> in, float s_in,
                     MatrixView<const i8> weights, float s_w, float out_scale,
                     MatrixView<i8> out) {
  GPTPU_CHECK(in.cols() == weights.rows(), "fully_connected: inner mismatch");
  GPTPU_CHECK(out.rows() == in.rows() && out.cols() == weights.cols(),
              "fully_connected: bad output shape");
  const double factor = static_cast<double>(out_scale) /
                        (static_cast<double>(s_in) * static_cast<double>(s_w));
  const Requant rq = Requant::plan(factor);
  const usize n = in.cols();
  const usize k = weights.cols();
  std::vector<i64> acc(k);
  for (usize r = 0; r < in.rows(); ++r) {
    std::fill(acc.begin(), acc.end(), 0);
    const i8* irow = in.row(r).data();
    for (usize j = 0; j < n; ++j) {
      const i32 a = irow[j];
      if (a == 0) continue;
      const i8* wrow = weights.row(j).data();
      for (usize c = 0; c < k; ++c) {
        acc[c] += a * static_cast<i32>(wrow[c]);
      }
    }
    i8* orow = out.row(r).data();
    for (usize c = 0; c < k; ++c) {
      orow[c] = rq.apply(acc[c]);
    }
  }
}

GPTPU_SCALAR_KERNEL
void pairwise(Opcode op, MatrixView<const i8> a, float s_a,
              MatrixView<const i8> b, float s_b, float out_scale,
              MatrixView<i8> out) {
  GPTPU_CHECK(a.shape() == b.shape() && a.shape() == out.shape(),
              "pairwise: shape mismatch");
  if (op != Opcode::kAdd && op != Opcode::kSub && op != Opcode::kMul) {
    throw InvalidArgument("pairwise: not a pairwise opcode");
  }
  const PairPlan pp = plan_pairwise(op, s_a, s_b, out_scale);
  for (usize r = 0; r < a.rows(); ++r) {
    const i8* ra = a.row(r).data();
    const i8* rb = b.row(r).data();
    i8* ro = out.row(r).data();
    for (usize c = 0; c < a.cols(); ++c) {
      ro[c] = pairwise_value(op, pp, ra[c], rb[c], out_scale);
    }
  }
}

GPTPU_SCALAR_KERNEL
void elementwise(Opcode op, MatrixView<const i8> in, float s_in,
                 float out_scale, MatrixView<i8> out) {
  GPTPU_CHECK(in.shape() == out.shape(), "elementwise: shape mismatch");
  std::array<i8, 256> lut{};
  const double inv = 1.0 / static_cast<double>(s_in);
  for (int q = -128; q <= 127; ++q) {
    const double x = q * inv;
    double y = 0;
    switch (op) {
      case Opcode::kTanh: y = std::tanh(x); break;
      case Opcode::kReLu: y = x > 0 ? x : 0; break;
      default: throw InvalidArgument("elementwise: not an elementwise opcode");
    }
    lut[static_cast<usize>(q + 128)] = requantize(y, out_scale);
  }
  for (usize r = 0; r < in.rows(); ++r) {
    const i8* ri = in.row(r).data();
    i8* ro = out.row(r).data();
    for (usize c = 0; c < in.cols(); ++c) {
      ro[c] = lut[static_cast<usize>(static_cast<int>(ri[c]) + 128)];
    }
  }
}

GPTPU_SCALAR_KERNEL
void fused_chain(Opcode head, MatrixView<const i8> in0, float s_in0,
                 MatrixView<const i8> in1, float s_in1, float head_out_scale,
                 std::span<const FusedStageArg> stages, MatrixView<i8> out) {
  check_fused_chain(head, in0, in1, stages, out);
  const Shape2D shape = out.shape();
  Matrix<i8> ping(stages.empty() ? Shape2D{} : shape);
  Matrix<i8> pong(stages.size() > 1 ? shape : Shape2D{});
  Matrix<i8> landed(stages.empty() ? Shape2D{} : shape);
  MatrixView<i8> cur = stages.empty() ? out : ping.view();
  if (op_class(head) == isa::OpClass::kElementwise) {
    reference::elementwise(head, in0, s_in0, head_out_scale, cur);
  } else {
    reference::pairwise(head, in0, s_in0, in1, s_in1, head_out_scale, cur);
  }
  float prev_scale = head_out_scale;
  for (usize s = 0; s < stages.size(); ++s) {
    const FusedStageArg& st = stages[s];
    const bool last = s + 1 == stages.size();
    MatrixView<i8> dst =
        last ? out : (s % 2 == 0 ? pong.view() : ping.view());
    // Land the intermediate onto the stage's input grid, then run the
    // stage through the scalar kernel exactly as the unfused instruction
    // would have consumed the landed tensor.
    const std::array<i8, 256> land = landing_lut(prev_scale, st.in_scale);
    const MatrixView<i8> landed_v = landed.view();
    for (usize r = 0; r < shape.rows; ++r) {
      const i8* ri = cur.row(r).data();
      i8* ro = landed_v.row(r).data();
      for (usize c = 0; c < shape.cols; ++c) {
        ro[c] = land[static_cast<usize>(static_cast<int>(ri[c]) + 128)];
      }
    }
    if (op_class(st.op) == isa::OpClass::kElementwise) {
      reference::elementwise(st.op, landed.view(), st.in_scale, st.out_scale,
                             dst);
    } else if (st.swapped) {
      reference::pairwise(st.op, st.operand, st.operand_scale, landed.view(),
                          st.in_scale, st.out_scale, dst);
    } else {
      reference::pairwise(st.op, landed.view(), st.in_scale, st.operand,
                          st.operand_scale, st.out_scale, dst);
    }
    cur = dst;
    prev_scale = st.out_scale;
  }
}

GPTPU_SCALAR_KERNEL
i8 reduce(Opcode op, MatrixView<const i8> in, float s_in, float out_scale) {
  GPTPU_CHECK(in.rows() > 0 && in.cols() > 0, "reduce: empty input");
  const double inv = 1.0 / static_cast<double>(s_in);
  if (op == Opcode::kMax) {
    i8 best = in(0, 0);
    for (usize r = 0; r < in.rows(); ++r) {
      for (i8 v : in.row(r)) best = std::max(best, v);
    }
    return requantize(best * inv, out_scale);
  }
  if (op == Opcode::kMean) {
    i64 acc = 0;
    for (usize r = 0; r < in.rows(); ++r) {
      for (i8 v : in.row(r)) acc += v;
    }
    const double mean =
        static_cast<double>(acc) / static_cast<double>(in.shape().elems());
    return requantize(mean * inv, out_scale);
  }
  throw InvalidArgument("reduce: not a matrix-wise opcode");
}

GPTPU_SCALAR_KERNEL
void crop(MatrixView<const i8> in, float s_in, isa::Window window,
          float out_scale, MatrixView<i8> out) {
  GPTPU_CHECK(window.row0 + window.shape.rows <= in.rows() &&
                  window.col0 + window.shape.cols <= in.cols(),
              "crop: window out of range");
  GPTPU_CHECK(out.shape() == window.shape, "crop: bad output shape");
  const double inv = 1.0 / static_cast<double>(s_in);
  for (usize r = 0; r < window.shape.rows; ++r) {
    const i8* ri = in.row(window.row0 + r).data() + window.col0;
    i8* ro = out.row(r).data();
    for (usize c = 0; c < window.shape.cols; ++c) {
      ro[c] = requantize(ri[c] * inv, out_scale);
    }
  }
}

GPTPU_SCALAR_KERNEL
void ext(MatrixView<const i8> in, float s_in, float out_scale,
         MatrixView<i8> out) {
  GPTPU_CHECK(out.rows() >= in.rows() && out.cols() >= in.cols(),
              "ext: output smaller than input");
  const double inv = 1.0 / static_cast<double>(s_in);
  for (usize r = 0; r < out.rows(); ++r) {
    i8* ro = out.row(r).data();
    if (r < in.rows()) {
      const i8* ri = in.row(r).data();
      usize c = 0;
      for (; c < in.cols(); ++c) ro[c] = requantize(ri[c] * inv, out_scale);
      for (; c < out.cols(); ++c) ro[c] = 0;
    } else {
      std::fill_n(ro, out.cols(), static_cast<i8>(0));
    }
  }
}

}  // namespace reference

}  // namespace gptpu::sim::kernels
