// First-principles model of the Edge TPU's matrix unit: a weight-
// stationary systolic array (§2.1: "a systolic array that performs
// operations on the units of matrices/tensors").
//
// Two roles:
//  * a *structurally different* functional implementation of the MXU's
//    matrix multiply -- weights pre-loaded into a PE grid, activations
//    streamed through with skew, partial sums flowing down -- whose
//    results must be bit-identical to the direct kernels (a strong
//    cross-check, used by tests);
//  * a from-physics cycle model (fill + stream + drain per tile pass)
//    that bench_systolic compares against the Table-1-calibrated timing
//    model, quantifying how far real end-to-end instruction rates sit
//    below the array's raw capability -- the gap the paper's §3.2
//    characterization exists to measure.
//
// Array geometry: the Edge TPU's 4 TOPS at ~480 MHz implies a 64x64 MAC
// grid (64*64*2*480e6 = 3.9 TOPS); the 128x128 *data tiles* of §3.3 are
// the compiler's packing unit, two array passes wide. Both knobs are
// parameters.
#pragma once

#include "common/matrix.hpp"
#include "common/types.hpp"

namespace gptpu::sim {

struct SystolicConfig {
  usize grid = 64;           // PE grid edge (grid x grid MACs)
  double clock_hz = 480e6;   // PE clock
  usize fill_cycles_per_tile = 64;  // weight pre-load, one column per cycle
};

class SystolicArray {
 public:
  explicit SystolicArray(SystolicConfig config = {});

  /// Cycle count of an M x N x K matrix multiply executed weight-
  /// stationary: for each (N/grid x K/grid) weight tile, fill the grid,
  /// stream M activation rows with pipeline skew (M + 2*grid - 2 cycles),
  /// accumulating partials across N-tiles.
  [[nodiscard]] u64 matmul_cycles(usize m, usize n, usize k) const;

  /// Seconds at the configured clock.
  [[nodiscard]] Seconds matmul_seconds(usize m, usize n, usize k) const;

  /// Peak MAC throughput of the array (MACs/second).
  [[nodiscard]] double peak_macs_per_second() const;

  /// Functional weight-stationary execution: out = in (MxN) x weights
  /// (NxK) with int32 accumulation, computed by explicitly simulating the
  /// PE grid cycle by cycle (activations skewed across columns, partial
  /// sums marching down rows). Must equal kernels::fully_connected_wide.
  void matmul(MatrixView<const i8> in, MatrixView<const i8> weights,
              MatrixView<i32> out) const;

  [[nodiscard]] const SystolicConfig& config() const { return config_; }

 private:
  SystolicConfig config_;
};

}  // namespace gptpu::sim
