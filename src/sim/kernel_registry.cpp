#include "sim/kernel_registry.hpp"

#include <atomic>

#include "common/metrics.hpp"
#include "sim/kernels.hpp"

// gptpu-analyze: deterministic-file
//
// Dispatch bookkeeping only: table construction, integer shape
// classification and counter bumps. All floating-point scale-regime math
// lives in kernels.cpp (classify_scale_config) so it is compiled with
// the kernel build flags.

namespace gptpu::sim {

using isa::OpClass;
using isa::Opcode;

namespace {

std::atomic<bool> g_force_generic{false};

/// The generic engine behind every fallback cell: exactly the dispatch
/// Device::execute performed before the registry existed.
GPTPU_VIRTUAL_DOMAIN
void run_generic(Opcode op, const KernelArgs& a) {
  switch (op) {
    case Opcode::kConv2D:
      if (a.wide) {
        kernels::conv2d_wide(a.in0, a.in1, a.stride, a.bank, a.wide_out,
                             a.pool);
      } else {
        kernels::conv2d(a.in0, a.s_in0, a.in1, a.s_in1, a.stride, a.bank,
                        a.out_scale, a.out, a.pool);
      }
      break;
    case Opcode::kFullyConnected:
      if (a.wide) {
        kernels::fully_connected_wide(a.in0, a.in1, a.wide_out, a.pool);
      } else {
        kernels::fully_connected(a.in0, a.s_in0, a.in1, a.s_in1, a.out_scale,
                                 a.out, a.pool);
      }
      break;
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMul:
      kernels::pairwise(op, a.in0, a.s_in0, a.in1, a.s_in1, a.out_scale,
                        a.out, a.pool);
      break;
    case Opcode::kTanh:
    case Opcode::kReLu:
      kernels::elementwise(op, a.in0, a.s_in0, a.out_scale, a.out, a.pool);
      break;
    case Opcode::kMean:
    case Opcode::kMax:
      a.out(0, 0) = kernels::reduce(op, a.in0, a.s_in0, a.out_scale);
      break;
    case Opcode::kCrop:
      kernels::crop(a.in0, a.s_in0, a.window, a.out_scale, a.out);
      break;
    case Opcode::kExt:
      kernels::ext(a.in0, a.s_in0, a.out_scale, a.out);
      break;
    default:
      throw InvalidArgument("kernel_registry: fused ops bypass the registry");
  }
}

/// Conv shape classes as (input extent, kernel extent) pairs.
struct ConvClass {
  ShapeClass cls;
  usize in;
  usize k;
};
constexpr ConvClass kConvClasses[] = {
    {ShapeClass::kConv128K3, 128, 3}, {ShapeClass::kConv128K5, 128, 5},
    {ShapeClass::kConv128K7, 128, 7}, {ShapeClass::kConv64K3, 64, 3},
    {ShapeClass::kConv64K5, 64, 5},
};

/// Shape-only classification from plan metadata (no views; staged tiles
/// are dense so contiguity holds by construction).
ShapeClass classify_shape(Opcode op, Shape2D in0, Shape2D in1,
                          isa::Stride stride, u16 bank) {
  switch (op_class(op)) {
    case OpClass::kArithmetic:
      if (op == Opcode::kConv2D) {
        if (stride.x != 1 || stride.y != 1 || bank == 0) {
          return ShapeClass::kGeneric;
        }
        for (const ConvClass& c : kConvClasses) {
          if (in0.rows == c.in && in0.cols == c.in && in1.cols == c.k &&
              in1.rows == c.k * bank) {
            return c.cls;
          }
        }
        return ShapeClass::kGeneric;
      }
      // FullyConnected: the inner dimension and the weight tile must sit
      // on the grid; the row count (batch) stays runtime-sized.
      if (in0.cols == 128 && in1.rows == 128 && in1.cols == 128) {
        return ShapeClass::kTile128;
      }
      if (in0.cols == 64 && in1.rows == 64 && in1.cols == 64) {
        return ShapeClass::kTile64;
      }
      return ShapeClass::kGeneric;
    case OpClass::kPairwise:
      // Column width on the grid is what the unrolled span loops key on;
      // the row count stays runtime-sized (edge bands of a tiled matrix
      // dispatch to the same variant as full tiles).
      if (in0.cols == 128 && in1 == in0) return ShapeClass::kTile128;
      if (in0.cols == 64 && in1 == in0) return ShapeClass::kTile64;
      return ShapeClass::kGeneric;
    case OpClass::kElementwise:
      if (in0.cols == 128) return ShapeClass::kTile128;
      if (in0.cols == 64) return ShapeClass::kTile64;
      return ShapeClass::kGeneric;
    default:
      // Layout and matrix-wise ops stay on the generic engine: they are
      // bandwidth-bound copies / reductions with no unrollable core.
      return ShapeClass::kGeneric;
  }
}

/// Execute-time check that the actual operand views still satisfy the
/// planned shape class. Integer compares only; returns false on any
/// doubt so run() demotes to the generic entry.
bool shape_matches(ShapeClass sc, Opcode op, const KernelArgs& a) {
  switch (sc) {
    case ShapeClass::kGeneric:
      return true;
    case ShapeClass::kTile128:
    case ShapeClass::kTile64: {
      const usize n = sc == ShapeClass::kTile128 ? 128 : 64;
      switch (op_class(op)) {
        case OpClass::kArithmetic: {  // FullyConnected
          if (op != Opcode::kFullyConnected) return false;
          if (a.in0.cols() != n || !a.in0.contiguous()) return false;
          if (a.in1.rows() != n || a.in1.cols() != n || !a.in1.contiguous()) {
            return false;
          }
          if (a.wide) {
            return a.wide_out.rows() == a.in0.rows() &&
                   a.wide_out.cols() == n && a.wide_out.contiguous();
          }
          return a.out.rows() == a.in0.rows() && a.out.cols() == n &&
                 a.out.contiguous();
        }
        case OpClass::kPairwise:
          return a.in0.cols() == n && a.in1.rows() == a.in0.rows() &&
                 a.in1.cols() == n && a.out.rows() == a.in0.rows() &&
                 a.out.cols() == n && a.in0.contiguous() &&
                 a.in1.contiguous() && a.out.contiguous();
        case OpClass::kElementwise:
          return a.in0.cols() == n && a.out.rows() == a.in0.rows() &&
                 a.out.cols() == n && a.in0.contiguous() &&
                 a.out.contiguous();
        default:
          return false;
      }
    }
    case ShapeClass::kConv128K3:
    case ShapeClass::kConv128K5:
    case ShapeClass::kConv128K7:
    case ShapeClass::kConv64K3:
    case ShapeClass::kConv64K5: {
      if (op != Opcode::kConv2D) return false;
      usize in = 0;
      usize k = 0;
      for (const ConvClass& c : kConvClasses) {
        if (c.cls == sc) {
          in = c.in;
          k = c.k;
        }
      }
      if (a.stride.x != 1 || a.stride.y != 1 || a.bank == 0) return false;
      if (a.in0.rows() != in || a.in0.cols() != in || !a.in0.contiguous()) {
        return false;
      }
      if (a.in1.cols() != k || a.in1.rows() != k * a.bank ||
          !a.in1.contiguous()) {
        return false;
      }
      const usize out_n = in - k + 1;
      if (a.wide) {
        return a.wide_out.rows() == out_n &&
               a.wide_out.cols() == out_n * a.bank && a.wide_out.contiguous();
      }
      return a.out.rows() == out_n && a.out.cols() == out_n * a.bank &&
             a.out.contiguous();
    }
  }
  return false;
}

struct DispatchCounters {
  metrics::Counter& hits;
  metrics::Counter& fallback;
  metrics::Counter& forced;
};

DispatchCounters& counters() {
  static DispatchCounters c{
      metrics::MetricRegistry::global().counter("dispatch.specialized_hits"),
      metrics::MetricRegistry::global().counter("dispatch.generic_fallback"),
      metrics::MetricRegistry::global().counter("dispatch.forced_generic"),
  };
  return c;
}

}  // namespace

u16 KernelRegistry::id_of(KernelKey key) {
  const usize op = static_cast<usize>(key.opcode);
  const usize sc = static_cast<usize>(key.shape_class);
  const usize cfg = static_cast<usize>(key.scale_config);
  GPTPU_CHECK(op < isa::kNumOpcodes && sc < kNumShapeClasses &&
                  cfg < kNumScaleConfigs,
              "kernel_registry: key out of range");
  return static_cast<u16>((op * kNumShapeClasses + sc) * kNumScaleConfigs +
                          cfg);
}

KernelKey KernelRegistry::key_of(u16 id) {
  GPTPU_CHECK(id < kTableSize, "kernel_registry: id out of range");
  KernelKey key;
  key.scale_config = static_cast<ScaleConfig>(id % kNumScaleConfigs);
  key.shape_class =
      static_cast<ShapeClass>((id / kNumScaleConfigs) % kNumShapeClasses);
  key.opcode =
      static_cast<Opcode>(id / (kNumScaleConfigs * kNumShapeClasses));
  return key;
}

KernelRegistry::KernelRegistry() {
  // Every cell starts on the generic engine; nonsensical combinations
  // (e.g. a conv shape class under kTanh) simply never classify, but
  // still resolve to a callable entry so the table is total.
  for (Opcode op : isa::kAllOpcodes) {
    for (usize sc = 0; sc < kNumShapeClasses; ++sc) {
      for (usize cfg = 0; cfg < kNumScaleConfigs; ++cfg) {
        KernelEntry& e = table_[id_of({op, static_cast<ShapeClass>(sc),
                                       static_cast<ScaleConfig>(cfg)})];
        e.fn = &run_generic;
        e.specialized = false;
        e.variant = "generic";
      }
    }
  }

  // Specialized variants recompute their requant plans from the actual
  // scales, so one function serves every scale regime of its shape
  // class (the wide/narrow split happens on args.wide inside).
  const auto set = [this](Opcode op, ShapeClass sc, KernelFn fn,
                          const char* variant) {
    for (usize cfg = 0; cfg < kNumScaleConfigs; ++cfg) {
      KernelEntry& e =
          table_[id_of({op, sc, static_cast<ScaleConfig>(cfg)})];
      e.fn = fn;
      e.specialized = true;
      e.variant = variant;
    }
  };
  set(Opcode::kConv2D, ShapeClass::kConv128K3, &kernels::spec::conv2d_128_k3,
      "conv2d_128_k3");
  set(Opcode::kConv2D, ShapeClass::kConv128K5, &kernels::spec::conv2d_128_k5,
      "conv2d_128_k5");
  set(Opcode::kConv2D, ShapeClass::kConv128K7, &kernels::spec::conv2d_128_k7,
      "conv2d_128_k7");
  set(Opcode::kConv2D, ShapeClass::kConv64K3, &kernels::spec::conv2d_64_k3,
      "conv2d_64_k3");
  set(Opcode::kConv2D, ShapeClass::kConv64K5, &kernels::spec::conv2d_64_k5,
      "conv2d_64_k5");
  set(Opcode::kFullyConnected, ShapeClass::kTile128,
      &kernels::spec::fully_connected_128, "fully_connected_128");
  set(Opcode::kFullyConnected, ShapeClass::kTile64,
      &kernels::spec::fully_connected_64, "fully_connected_64");
  for (Opcode op : {Opcode::kAdd, Opcode::kSub, Opcode::kMul}) {
    set(op, ShapeClass::kTile128, &kernels::spec::pairwise_128,
        "pairwise_128");
    set(op, ShapeClass::kTile64, &kernels::spec::pairwise_64, "pairwise_64");
  }
  for (Opcode op : {Opcode::kTanh, Opcode::kReLu}) {
    set(op, ShapeClass::kTile128, &kernels::spec::elementwise_128,
        "elementwise_128");
    set(op, ShapeClass::kTile64, &kernels::spec::elementwise_64,
        "elementwise_64");
  }
}

const KernelRegistry& KernelRegistry::instance() {
  static KernelRegistry reg;
  return reg;
}

const KernelEntry& KernelRegistry::entry(KernelKey key) const {
  return table_[id_of(key)];
}

const KernelEntry& KernelRegistry::entry_at(u16 id) const {
  GPTPU_CHECK(id < kTableSize, "kernel_registry: id out of range");
  return table_[id];
}

KernelKey KernelRegistry::classify(Opcode op, const KernelArgs& args) {
  KernelKey key;
  key.opcode = op;
  key.shape_class =
      classify_shape(op, args.in0.shape(), args.in1.shape(), args.stride,
                     args.bank);
  // Tile classes also require contiguity, which plan metadata guarantees
  // but an arbitrary view may not: verify against the actual views.
  if (key.shape_class != ShapeClass::kGeneric &&
      !shape_matches(key.shape_class, op, args)) {
    key.shape_class = ShapeClass::kGeneric;
  }
  key.scale_config = kernels::classify_scale_config(op, args.s_in0, args.s_in1,
                                                    args.out_scale, args.wide);
  return key;
}

u16 KernelRegistry::resolve(Opcode op, Shape2D in0, Shape2D in1,
                            isa::Stride stride, u16 bank, float s_in0,
                            float s_in1, float out_scale, bool wide) {
  KernelKey key;
  key.opcode = op;
  key.shape_class = classify_shape(op, in0, in1, stride, bank);
  key.scale_config =
      kernels::classify_scale_config(op, s_in0, s_in1, out_scale, wide);
  return id_of(key);
}

void KernelRegistry::run(Opcode op, u16 kernel_id, const KernelArgs& args) {
  const KernelRegistry& reg = instance();
  DispatchCounters& c = counters();
  if (g_force_generic.load(std::memory_order_relaxed)) {
    c.forced.add(1);
    run_generic(op, args);
    return;
  }
  u16 id = kernel_id;
  if (id >= kTableSize || key_of(id).opcode != op) {
    id = id_of(classify(op, args));
  } else {
    // Trust-but-verify: the plan-time class must still describe the
    // actual views (shapes can legitimately drift, e.g. model padding).
    const KernelKey key = key_of(id);
    if (reg.table_[id].specialized &&
        (!shape_matches(key.shape_class, op, args) ||
         (key.scale_config == ScaleConfig::kWide) != args.wide)) {
      id = id_of(classify(op, args));
    }
  }
  const KernelEntry& e = reg.table_[id];
  if (e.specialized) {
    c.hits.add(1);
  } else {
    c.fallback.add(1);
  }
  e.fn(op, args);
}

void KernelRegistry::set_force_generic(bool on) {
  g_force_generic.store(on, std::memory_order_relaxed);
}

bool KernelRegistry::force_generic() {
  return g_force_generic.load(std::memory_order_relaxed);
}

}  // namespace gptpu::sim
