#include "sim/systolic.hpp"

#include <vector>

namespace gptpu::sim {

SystolicArray::SystolicArray(SystolicConfig config) : config_(config) {
  GPTPU_CHECK(config_.grid > 0, "empty PE grid");
  GPTPU_CHECK(config_.clock_hz > 0, "non-positive clock");
}

u64 SystolicArray::matmul_cycles(usize m, usize n, usize k) const {
  const usize g = config_.grid;
  const u64 n_tiles = (n + g - 1) / g;
  const u64 k_tiles = (k + g - 1) / g;
  // Per weight-tile pass: pre-load the weights, then stream the M
  // activation rows through the skewed pipeline (M + 2g - 2 cycles from
  // first entry to last exit).
  const u64 pass = config_.fill_cycles_per_tile +
                   static_cast<u64>(m) + 2 * g - 2;
  return n_tiles * k_tiles * pass;
}

Seconds SystolicArray::matmul_seconds(usize m, usize n, usize k) const {
  return static_cast<double>(matmul_cycles(m, n, k)) / config_.clock_hz;
}

double SystolicArray::peak_macs_per_second() const {
  return static_cast<double>(config_.grid) * config_.grid * config_.clock_hz;
}

void SystolicArray::matmul(MatrixView<const i8> in,
                           MatrixView<const i8> weights,
                           MatrixView<i32> out) const {
  GPTPU_CHECK(in.cols() == weights.rows(), "systolic: inner mismatch");
  GPTPU_CHECK(out.rows() == in.rows() && out.cols() == weights.cols(),
              "systolic: bad output shape");
  const usize g = config_.grid;
  const usize m = in.rows();

  for (usize r_out = 0; r_out < out.rows(); ++r_out) {
    auto row = out.row(r_out);
    std::fill(row.begin(), row.end(), 0);
  }

  // Double-buffered per-PE registers for one tile pass.
  std::vector<i8> a_cur(g * g), a_next(g * g);
  std::vector<i32> p_cur(g * g), p_next(g * g);

  for (usize n0 = 0; n0 < weights.rows(); n0 += g) {
    const usize nt = std::min(g, weights.rows() - n0);
    for (usize k0 = 0; k0 < weights.cols(); k0 += g) {
      const usize kt = std::min(g, weights.cols() - k0);

      // Fill phase: weights become stationary. (The cycle model charges
      // fill_cycles_per_tile; functionally it is a copy.)
      auto w_at = [&](usize r, usize c) -> i32 {
        if (r >= nt || c >= kt) return 0;  // zero padding beyond the edge
        return weights(n0 + r, k0 + c);
      };

      std::fill(a_cur.begin(), a_cur.end(), 0);
      std::fill(p_cur.begin(), p_cur.end(), 0);

      // Stream phase: activation a(mrow, n0+r) enters PE row r from the
      // left at cycle mrow + r; it marches right one column per cycle.
      // Partial sums march down one row per cycle; output element
      // (mrow, k0+c) exits the bottom at cycle mrow + (g-1) + c.
      const usize last_cycle = m + 2 * g - 2;
      for (usize t = 0; t < last_cycle; ++t) {
        for (usize r = 0; r < g; ++r) {
          for (usize c = 0; c < g; ++c) {
            i8 a;
            if (c == 0) {
              // New activation enters from the left edge.
              const i64 mrow = static_cast<i64>(t) - static_cast<i64>(r);
              a = (mrow >= 0 && mrow < static_cast<i64>(m) && r < nt)
                      ? in(static_cast<usize>(mrow), n0 + r)
                      : static_cast<i8>(0);
            } else {
              a = a_cur[r * g + (c - 1)];
            }
            a_next[r * g + c] = a;
            const i32 above = r == 0 ? 0 : p_cur[(r - 1) * g + c];
            p_next[r * g + c] = above + w_at(r, c) * static_cast<i32>(a);
          }
        }
        std::swap(a_cur, a_next);
        std::swap(p_cur, p_next);
        // Collect outputs leaving the bottom row this cycle.
        for (usize c = 0; c < kt; ++c) {
          const i64 mrow = static_cast<i64>(t) - static_cast<i64>(g - 1) -
                           static_cast<i64>(c);
          if (mrow >= 0 && mrow < static_cast<i64>(m)) {
            out(static_cast<usize>(mrow), k0 + c) += p_cur[(g - 1) * g + c];
          }
        }
      }
    }
  }
}

}  // namespace gptpu::sim
