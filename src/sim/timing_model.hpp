// The Edge TPU timing model, calibrated against the paper's measurements.
//
// Instruction latency:
//   t = t_issue(op) + MACs / mac_rate(op) + out_elems / rate_term(op)
//
// * For the arithmetic operators (conv2D, FullyConnected) the MAC term uses
//   the calibrated effective rates of machine_constants.hpp and t_issue is
//   back-solved so that the operator's Table 1 reference shape reproduces
//   Table 1's OPS and RPS exactly.
// * For every other operator the latency is out_elems / RPS(op) (with a
//   small floor), which reproduces Table 1 by construction: the paper
//   measured OPS and RPS at the same reference shape, so
//   ref_out / RPS == 1 / OPS.
//
// Transfers: size-linear at the measured ~6 ms/MB (§3.2) plus a fixed
// per-transfer setup cost.
#pragma once

#include "common/domain_annotations.hpp"
#include "common/types.hpp"
#include "isa/instruction.hpp"
#include "perfmodel/machine_constants.hpp"
#include "sim/device_profile.hpp"

namespace gptpu::sim {

class TimingModel {
 public:
  /// Calibrated for the given device profile (default: the paper's M.2
  /// Edge TPU on PCIe).
  explicit TimingModel(const DeviceProfile& profile = kEdgeTpuPcie);

  /// Latency of one instruction given its operand/output shapes.
  GPTPU_VIRTUAL_DOMAIN
  [[nodiscard]] Seconds instruction_latency(const isa::Instruction& instr,
                                            Shape2D in0, Shape2D in1,
                                            Shape2D out) const;

  /// Latency of moving `bytes` across one host<->device link.
  GPTPU_VIRTUAL_DOMAIN
  [[nodiscard]] Seconds transfer_latency(usize bytes) const;

  /// Latency of the fast (Tensorizer) model-creation path for `elems`
  /// values (§6.2.3: 1.8 ms per 2Kx2K). Host-side cost.
  GPTPU_VIRTUAL_DOMAIN
  [[nodiscard]] Seconds model_creation_latency(usize elems) const;

  /// Host-side cost of reshaping `bytes` of data (conv2D-GEMM layout
  /// transform and similar).
  GPTPU_VIRTUAL_DOMAIN
  [[nodiscard]] Seconds host_reshape_latency(usize bytes) const;

  [[nodiscard]] const DeviceProfile& profile() const { return profile_; }

 private:
  DeviceProfile profile_;
  // Back-solved issue overheads for the arithmetic operators.
  Seconds conv2d_issue_ = 0;
  Seconds fc_issue_ = 0;
};

/// Reference shapes at which Table 1 measured each operator: 128x128 tiles
/// for most operators, 64x64 for the matrix-wise reductions (§6.2.1), a
/// 3x3 kernel for conv2D and a 128-vector x 128x128 model for
/// FullyConnected. Used by the calibration and by bench_table1.
struct ReferenceShape {
  Shape2D in0;
  Shape2D in1;  // kernel / model / second operand ({0,0} if unused)
};
[[nodiscard]] ReferenceShape table1_reference_shape(isa::Opcode op);

}  // namespace gptpu::sim
