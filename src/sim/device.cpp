#include "sim/device.hpp"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "common/flight_recorder.hpp"
#include "common/span_profiler.hpp"
#include "sim/fault_injector.hpp"
#include "sim/kernel_registry.hpp"
#include "sim/kernels.hpp"

namespace gptpu::sim {

using isa::DeviceTensorId;
using isa::Instruction;
using isa::Opcode;

Device::Device(const DeviceConfig& config, const TimingModel* timing)
    : config_(config),
      timing_(timing),
      compute_("tpu" + std::to_string(config.id) + ".compute"),
      link_("tpu" + std::to_string(config.id) + ".link") {
  GPTPU_CHECK(timing_ != nullptr, "Device needs a TimingModel");
}

const Device::TensorRecord& Device::record(DeviceTensorId id) const {
  const auto it = tensors_.find(id.value);
  GPTPU_CHECK(it != tensors_.end(),
              "unknown device tensor id " + std::to_string(id.value));
  return it->second;
}

Result<DeviceTensorId> Device::alloc(Shape2D shape, float scale, Seconds ready,
                                     bool with_data, bool wide) {
  const usize bytes = shape.elems() * (wide ? sizeof(i32) : sizeof(i8));
  if (bytes > config_.memory_bytes - memory_used_) {
    std::ostringstream os;
    os << "device " << config_.id << ": tensor of " << bytes
       << " bytes does not fit (used " << memory_used_ << " of "
       << config_.memory_bytes << ")";
    return Status{StatusCode::kResourceExhausted, os.str()};
  }
  const DeviceTensorId id{next_id_++};
  TensorRecord rec;
  rec.shape = shape;
  rec.scale = scale;
  rec.ready = ready;
  rec.wide = wide;
  if (with_data && config_.functional) rec.data.assign(bytes, 0);
  memory_used_ += bytes;
  tensors_.emplace(id.value, std::move(rec));
  return id;
}

// Shared transfer-boundary fault handling: on a transient fault the failed
// attempt still occupied the wire before the (modelled) CRC check rejected
// it, so the link time is charged; a lost device never sees the bytes.
Status Device::consult_transfer(Seconds ready, Seconds wire_seconds) {
  const FaultInjector::Decision d =
      injector_->consult(config_.id, FaultInjector::Boundary::kTransfer);
  if (d.code == StatusCode::kOk) return {};
  if (d.code == StatusCode::kTransferError) {
    (void)link_.acquire(ready, wire_seconds, "fault-transfer");
    return {d.code, "injected transfer fault"};
  }
  return {d.code, "device lost"};
}

Result<Device::Completion> Device::write_tensor(Shape2D shape, float scale,
                                                std::span<const i8> data,
                                                Seconds ready,
                                                Seconds link_setup) {
  if (config_.functional) {
    GPTPU_CHECK(data.size() == shape.elems(),
                "write_tensor: data does not match shape");
  }
  const Seconds wire = link_setup + timing_->transfer_latency(shape.elems());
  if (injector_ != nullptr) {
    const Status st = consult_transfer(ready, wire);
    if (!st.ok()) return st;
  }
  const Seconds done = link_.acquire(ready, wire);
  MutexLock lock(mu_);
  const auto id = alloc(shape, scale, done, /*with_data=*/true);
  if (!id.ok()) return id.status();
  if (config_.functional) {
    auto& rec = tensors_.at(id.value().value);
    std::copy(data.begin(), data.end(), rec.data.begin());
  }
  return Completion{id.value(), done};
}

Result<Device::Completion> Device::load_model(std::span<const u8> blob,
                                              Seconds ready,
                                              Seconds link_setup) {
  const Seconds wire = link_setup + timing_->transfer_latency(blob.size());
  if (injector_ != nullptr) {
    const Status st = consult_transfer(ready, wire);
    if (!st.ok()) return st;
  }
  const isa::ParsedModel parsed = isa::parse_model(blob);
  const Seconds done = link_.acquire(ready, wire);
  MutexLock lock(mu_);
  const auto id =
      alloc(parsed.info.padded, parsed.info.scale, done, /*with_data=*/true);
  if (!id.ok()) return id.status();
  if (config_.functional) {
    auto& rec = tensors_.at(id.value().value);
    std::copy(parsed.data.begin(), parsed.data.end(), rec.data.begin());
  }
  return Completion{id.value(), done};
}

Result<Device::Completion> Device::load_model_meta(const isa::ModelInfo& info,
                                                   Seconds ready,
                                                   Seconds link_setup) {
  const Seconds wire =
      link_setup + timing_->transfer_latency(isa::model_wire_size(info.padded));
  if (injector_ != nullptr) {
    const Status st = consult_transfer(ready, wire);
    if (!st.ok()) return st;
  }
  const Seconds done = link_.acquire(ready, wire);
  MutexLock lock(mu_);
  const auto id = alloc(info.padded, info.scale, done, /*with_data=*/false);
  if (!id.ok()) return id.status();
  return Completion{id.value(), done};
}

Result<Device::Completion> Device::execute(const Instruction& instr,
                                           Seconds ready) {
  FaultInjector::Decision fault;
  if (injector_ != nullptr) {
    // Deadline clamp (docs/SERVING.md): a hung execute may bill at most
    // the op's remaining virtual budget before the watchdog verdict.
    const Seconds clamp = instr.deadline_vt > 0
                              ? std::max<Seconds>(instr.deadline_vt - ready, 0)
                              : -1;
    fault = injector_->consult(config_.id, FaultInjector::Boundary::kExecute,
                               clamp);
    if (fault.code == StatusCode::kDeviceLost) {
      return Status{fault.code, "device lost"};
    }
    if (fault.code == StatusCode::kExecuteTimeout) {
      // The hung inference occupies the compute unit until the watchdog
      // declares the device dead.
      (void)compute_.acquire(ready, fault.extra_latency, "fault-watchdog");
      return Status{fault.code, "injected hang past the watchdog"};
    }
    if (fault.code == StatusCode::kDeadlineExceeded) {
      // Sub-watchdog hang that still outlives the op's deadline: bill the
      // clamped interval and expire the op; the device itself is fine.
      (void)compute_.acquire(ready, fault.extra_latency, "fault-deadline");
      return Status{fault.code, "hung execute outlived the op deadline"};
    }
  }
  MutexLock lock(mu_);
  const TensorRecord& in0 = record(instr.in0);
  const TensorRecord* in1 =
      isa::has_second_operand(instr.op) || instr.in1.valid()
          ? &record(instr.in1)
          : nullptr;
  const Shape2D in1_shape = in1 ? in1->shape : Shape2D{};
  const Shape2D out_shape =
      isa::infer_output_shape(instr, in0.shape, in1_shape);

  Seconds start = std::max(ready, in0.ready);
  if (in1 != nullptr) start = std::max(start, in1->ready);
  // Fused chain instructions: every stage operand must be resident before
  // the chain launches; the chain is one indivisible compute interval.
  for (usize s = 0; s < instr.fused_stage_count; ++s) {
    const isa::FusedStage& st = instr.fused_stages[s];
    if (st.operand.valid()) start = std::max(start, record(st.operand).ready);
  }

  // A sub-watchdog injected hang rides in the same compute interval.
  const Seconds done = compute_.acquire(
      start,
      timing_->instruction_latency(instr, in0.shape, in1_shape, out_shape) +
          fault.extra_latency,
      std::string(isa::name(instr.op)));

  if (instr.trace_id != 0 && flight::armed()) {
    flight::emit({.trace_id = instr.trace_id,
                  .kind = flight::EventKind::kExecuteBegin,
                  .device = config_.id,
                  .vt = start});
    flight::emit({.trace_id = instr.trace_id,
                  .kind = flight::EventKind::kExecuteEnd,
                  .device = config_.id,
                  .vt = done,
                  .vdur = done - start});
  }

  const bool wide = instr.wide_output &&
                    isa::op_class(instr.op) == isa::OpClass::kArithmetic;
  const auto out_alloc =
      alloc(out_shape, instr.out_scale, done, /*with_data=*/true, wide);
  if (!out_alloc.ok()) return out_alloc.status();
  const DeviceTensorId out_id = out_alloc.value();

  if (config_.functional) {
    GPTPU_SPAN("kernel_execute");
    auto& out_rec = tensors_.at(out_id.value);
    MatrixView<i8> out{out_rec.data.data(), out_shape};
    MatrixView<i32> wout{reinterpret_cast<i32*>(out_rec.data.data()),
                         out_shape};
    const MatrixView<const i8> a{in0.data.data(), in0.shape};
    if (!isa::is_fused(instr.op)) {
      // Every unfused op dispatches through the kernel registry: the
      // plan-time `kernel_id` selects a specialized fixed-shape variant
      // when one matches, and falls back to the generic engine through
      // the same table otherwise.
      KernelArgs ka;
      ka.in0 = a;
      ka.s_in0 = in0.scale;
      if (in1 != nullptr) {
        ka.in1 = {in1->data.data(), in1->shape};
        ka.s_in1 = in1->scale;
      }
      ka.stride = instr.stride;
      ka.window = instr.window;
      ka.bank = instr.kernel_bank;
      ka.out_scale = instr.out_scale;
      ka.wide = wide;
      ka.out = out;
      ka.wide_out = wout;
      ka.pool = compute_pool_;
      KernelRegistry::run(instr.op, instr.kernel_id, ka);
    } else {
      // Fused chain instructions keep their dedicated path: their shape
      // work happens per stage inside fused_chain.
      std::array<kernels::FusedStageArg, isa::kMaxFusedStages> stages{};
      for (usize s = 0; s < instr.fused_stage_count; ++s) {
        const isa::FusedStage& st = instr.fused_stages[s];
        kernels::FusedStageArg& arg = stages[s];
        arg.op = st.op;
        arg.swapped = st.swapped;
        arg.in_scale = st.in_scale;
        arg.out_scale = st.out_scale;
        if (st.operand.valid()) {
          const TensorRecord& rec = record(st.operand);
          arg.operand = {rec.data.data(), rec.shape};
          arg.operand_scale = rec.scale;
        }
      }
      kernels::fused_chain(
          instr.head_op, a, in0.scale,
          in1 != nullptr ? MatrixView<const i8>{in1->data.data(), in1->shape}
                         : MatrixView<const i8>{},
          in1 != nullptr ? in1->scale : 1.0f, instr.head_scale,
          {stages.data(), instr.fused_stage_count}, out, compute_pool_);
    }
  }
  return Completion{out_id, done};
}

Result<Seconds> Device::read_tensor(DeviceTensorId id, std::span<i8> out,
                                    Seconds ready) {
  FaultInjector::Decision fault;
  if (injector_ != nullptr) {
    fault = injector_->consult(config_.id, FaultInjector::Boundary::kReadback);
    if (fault.code == StatusCode::kDeviceLost) {
      return Status{fault.code, "device lost"};
    }
  }
  MutexLock lock(mu_);
  const TensorRecord& rec = record(id);
  GPTPU_CHECK(!rec.wide, "read_tensor on a wide tensor");
  if (config_.functional) {
    GPTPU_CHECK(out.size() == rec.shape.elems(),
                "read_tensor: bad destination size");
    std::copy(rec.data.begin(), rec.data.end(), out.begin());
  }
  const Seconds done = link_.acquire(std::max(ready, rec.ready),
                                     timing_->transfer_latency(rec.bytes()));
  if (fault.code == StatusCode::kDataCorruption) {
    // The transfer paid for itself before the verification failed; one bit
    // of the copy is flipped so the corruption is real, and the caller
    // must discard the buffer. The resident tensor is intact, so a retry
    // re-reads clean data.
    if (!out.empty()) {
      auto& b = out[static_cast<usize>(fault.corrupt_bit / 8 % out.size())];
      b = static_cast<i8>(b ^ static_cast<i8>(1 << (fault.corrupt_bit % 8)));
    }
    return Status{fault.code, "injected readback corruption"};
  }
  return done;
}

Result<Seconds> Device::read_tensor_wide(DeviceTensorId id, std::span<i32> out,
                                         Seconds ready) {
  FaultInjector::Decision fault;
  if (injector_ != nullptr) {
    fault = injector_->consult(config_.id, FaultInjector::Boundary::kReadback);
    if (fault.code == StatusCode::kDeviceLost) {
      return Status{fault.code, "device lost"};
    }
  }
  MutexLock lock(mu_);
  const TensorRecord& rec = record(id);
  GPTPU_CHECK(rec.wide, "read_tensor_wide on a narrow tensor");
  if (config_.functional) {
    GPTPU_CHECK(out.size() == rec.shape.elems(),
                "read_tensor_wide: bad destination size");
    std::memcpy(out.data(), rec.data.data(), rec.data.size());
  }
  const Seconds done = link_.acquire(std::max(ready, rec.ready),
                                     timing_->transfer_latency(rec.bytes()));
  if (fault.code == StatusCode::kDataCorruption) {
    if (!out.empty()) {
      auto& w = out[static_cast<usize>(fault.corrupt_bit / 32 % out.size())];
      w ^= i32{1} << (fault.corrupt_bit % 32);
    }
    return Status{fault.code, "injected readback corruption"};
  }
  return done;
}

void Device::free_tensor(DeviceTensorId id) {
  MutexLock lock(mu_);
  const auto it = tensors_.find(id.value);
  GPTPU_CHECK(it != tensors_.end(),
              "free_tensor: unknown id " + std::to_string(id.value));
  memory_used_ -= it->second.bytes();
  tensors_.erase(it);
}

Shape2D Device::tensor_shape(DeviceTensorId id) const {
  MutexLock lock(mu_);
  return record(id).shape;
}
float Device::tensor_scale(DeviceTensorId id) const {
  MutexLock lock(mu_);
  return record(id).scale;
}
Seconds Device::tensor_ready(DeviceTensorId id) const {
  MutexLock lock(mu_);
  return record(id).ready;
}

MatrixView<const i8> Device::tensor_data(DeviceTensorId id) const {
  MutexLock lock(mu_);
  const TensorRecord& rec = record(id);
  GPTPU_CHECK(config_.functional, "tensor_data in timing-only mode");
  return {rec.data.data(), rec.shape};
}

Seconds Device::idle_at() const {
  return std::max(compute_.busy_until(), link_.busy_until());
}

Seconds Device::active_time() const {
  return compute_.busy_time() + link_.busy_time();
}

void Device::reset() {
  compute_.reset();
  link_.reset();
  MutexLock lock(mu_);
  tensors_.clear();
  memory_used_ = 0;
  next_id_ = 0;
}

}  // namespace gptpu::sim
