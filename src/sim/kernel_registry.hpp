// Kernel-specialization registry: plan-time dispatch to fixed-shape
// kernel variants (docs/PERFORMANCE.md, "Kernel specialization &
// dispatch").
//
// The functional engine in sim/kernels.cpp is shape/stride/scale
// polymorphic: every instruction re-derives strides, requant plans and
// loop bounds per call. But the device's sweet-spot tiles are fixed --
// 128x128 and 64x64 (isa::optimal_tile) -- so the hot path executes the
// same handful of (opcode, shape, scale regime) combinations over and
// over. This registry resolves that combination ONCE, at plan-dispatch
// time, into a KernelKey{opcode, shape_class, scale_config} and caches
// the resulting table index on the InstructionPlan / isa::Instruction
// (`kernel_id`), so Device::execute jumps straight to a pre-selected
// variant with compile-time-constant extents.
//
// Correctness contract: every specialized variant is bit-exact against
// kernels::reference because it shares the same quant::Requant /
// pairwise plan construction as the generic engine
// (tests/test_kernels_equivalence.cpp runs the whole property suite in
// both dispatch modes). Shapes or scale regimes the table has no
// specialization for resolve to the generic engine through the same
// table -- no behavior change off the hot path. run() re-verifies the
// cached class against the actual operand views with integer compares
// before trusting it, so a stale or wrong plan id degrades to generic
// dispatch instead of corrupting results.
//
// Observability: `dispatch.specialized_hits` / `dispatch.generic_fallback`
// count dispatch decisions in the MetricRegistry (deterministic per
// program); `dispatch.forced_generic` counts runs under the test-only
// force_generic override so A/B runs do not pollute the hit rate.
//
// gptpu-analyze: deterministic-file
#pragma once

#include <array>

#include "common/domain_annotations.hpp"
#include "common/matrix.hpp"
#include "isa/instruction.hpp"
#include "isa/opcode.hpp"

namespace gptpu {
class ThreadPool;
}  // namespace gptpu

namespace gptpu::sim {

/// Shape classes the table distinguishes. Tile classes mean "every
/// operand sits on the named square grid and is contiguous"; conv
/// classes additionally fix the kernel extent (any bank) and require
/// unit stride. Everything else is kGeneric.
enum class ShapeClass : u8 {
  kGeneric = 0,  // no specialization; generic engine
  kTile128,      // 128x128 contiguous tiles (pairwise/elementwise/FC)
  kTile64,       // 64x64 contiguous tiles
  kConv128K3,    // conv2d: 128x128 input, 3x3 kernel, stride 1
  kConv128K5,    // conv2d: 128x128 input, 5x5 kernel, stride 1
  kConv128K7,    // conv2d: 128x128 input, 7x7 kernel, stride 1
  kConv64K3,     // conv2d: 64x64 input, 3x3 kernel, stride 1
  kConv64K5,     // conv2d: 64x64 input, 5x5 kernel, stride 1
};
inline constexpr usize kNumShapeClasses = 8;

/// Scale regimes. Advisory metadata on the key: specialized variants
/// recompute their Requant / pairwise plan from the actual scales at
/// execute (that recomputation is what keeps them bit-exact), so a
/// regime mismatch can never corrupt results -- but the regime names the
/// requant strategy the variant will land on, and the coverage test
/// walks it as a first-class key dimension.
enum class ScaleConfig : u8 {
  kFixedGrid = 0,   // 47-bit fixed-point requant multipliers apply
  kSaturating,      // factor > 127.5: every nonzero accumulator saturates
  kDoubleFallback,  // off-grid factors: per-element double math
  kWide,            // raw i32 accumulator output, no requantization
};
inline constexpr usize kNumScaleConfigs = 4;

struct KernelKey {
  isa::Opcode opcode = isa::Opcode::kAdd;
  ShapeClass shape_class = ShapeClass::kGeneric;
  ScaleConfig scale_config = ScaleConfig::kFixedGrid;
  bool operator==(const KernelKey&) const = default;
};

/// Operand bundle every registry kernel receives. Views are the device's
/// resident tensors; `out` / `wide_out` alias the freshly allocated
/// output record (`wide_out` is only meaningful when `wide` is set).
struct KernelArgs {
  MatrixView<const i8> in0;
  float s_in0 = 1.0f;
  MatrixView<const i8> in1;
  float s_in1 = 1.0f;
  isa::Stride stride{};
  isa::Window window{};
  u16 bank = 1;
  float out_scale = 1.0f;
  bool wide = false;
  MatrixView<i8> out;
  MatrixView<i32> wide_out;
  ThreadPool* pool = nullptr;
};

/// Registry kernels take the opcode so one function can serve several
/// table cells (e.g. add/sub/mul share a pairwise variant).
using KernelFn = void (*)(isa::Opcode op, const KernelArgs& args);

struct KernelEntry {
  KernelFn fn = nullptr;
  bool specialized = false;  // counts as a dispatch.specialized_hits hit
  const char* variant = "";  // human-readable variant name (tests, dumps)
};

class KernelRegistry {
 public:
  /// Sentinel for "no plan-time resolution"; run() classifies on the spot.
  static constexpr u16 kUnresolved = 0xffff;
  static constexpr usize kTableSize =
      isa::kNumOpcodes * kNumShapeClasses * kNumScaleConfigs;

  static const KernelRegistry& instance();

  /// Flat table index of a key (always < kTableSize).
  [[nodiscard]] static u16 id_of(KernelKey key);
  [[nodiscard]] static KernelKey key_of(u16 id);

  /// Classifies the actual operand views. Pure shape/scale inspection.
  GPTPU_VIRTUAL_DOMAIN
  [[nodiscard]] static KernelKey classify(isa::Opcode op,
                                          const KernelArgs& args);

  /// Plan-time resolution from the tensorizer's tile metadata (staged
  /// tiles are dense, so contiguity is assumed). Returns the table id to
  /// cache on the InstructionPlan.
  GPTPU_VIRTUAL_DOMAIN
  [[nodiscard]] static u16 resolve(isa::Opcode op, Shape2D in0, Shape2D in1,
                                   isa::Stride stride, u16 bank, float s_in0,
                                   float s_in1, float out_scale, bool wide);

  /// Dispatches one instruction. `kernel_id` is the plan-time resolution
  /// (kUnresolved classifies here instead); a specialized entry is
  /// re-verified against the actual views with integer compares and
  /// demoted to the generic entry on mismatch. Bumps the dispatch.*
  /// counters.
  GPTPU_VIRTUAL_DOMAIN
  static void run(isa::Opcode op, u16 kernel_id, const KernelArgs& args);

  [[nodiscard]] const KernelEntry& entry(KernelKey key) const;
  [[nodiscard]] const KernelEntry& entry_at(u16 id) const;

  /// Test/bench override: route every run() through the generic engine
  /// (counted under dispatch.forced_generic, not generic_fallback).
  static void set_force_generic(bool on);
  [[nodiscard]] static bool force_generic();

 private:
  KernelRegistry();
  std::array<KernelEntry, kTableSize> table_{};
};

}  // namespace gptpu::sim

namespace gptpu::sim::kernels {

/// Scale-regime classification shared by plan-time resolve and the
/// coverage tests. Defined in kernels.cpp so the floating-point plan
/// math is compiled with exactly the flags the kernels themselves use.
GPTPU_VIRTUAL_DOMAIN
[[nodiscard]] ScaleConfig classify_scale_config(isa::Opcode op, float s_in0,
                                                float s_in1, float out_scale,
                                                bool wide);

/// Fully-unrolled fixed-shape variants (defined in kernels.cpp alongside
/// the generic engine so they share its requant helpers and build
/// flags). Preconditions -- the shape class named in the function --
/// are guaranteed by KernelRegistry::run's verification.
namespace spec {

GPTPU_VIRTUAL_DOMAIN void conv2d_128_k3(isa::Opcode op, const KernelArgs& a);
GPTPU_VIRTUAL_DOMAIN void conv2d_128_k5(isa::Opcode op, const KernelArgs& a);
GPTPU_VIRTUAL_DOMAIN void conv2d_128_k7(isa::Opcode op, const KernelArgs& a);
GPTPU_VIRTUAL_DOMAIN void conv2d_64_k3(isa::Opcode op, const KernelArgs& a);
GPTPU_VIRTUAL_DOMAIN void conv2d_64_k5(isa::Opcode op, const KernelArgs& a);
GPTPU_VIRTUAL_DOMAIN void fully_connected_128(isa::Opcode op,
                                              const KernelArgs& a);
GPTPU_VIRTUAL_DOMAIN void fully_connected_64(isa::Opcode op,
                                             const KernelArgs& a);
GPTPU_VIRTUAL_DOMAIN void pairwise_128(isa::Opcode op, const KernelArgs& a);
GPTPU_VIRTUAL_DOMAIN void pairwise_64(isa::Opcode op, const KernelArgs& a);
GPTPU_VIRTUAL_DOMAIN void elementwise_128(isa::Opcode op, const KernelArgs& a);
GPTPU_VIRTUAL_DOMAIN void elementwise_64(isa::Opcode op, const KernelArgs& a);

}  // namespace spec

}  // namespace gptpu::sim::kernels
