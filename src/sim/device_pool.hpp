// A pool of simulated Edge TPUs sharing one timing model -- the software
// equivalent of the paper's quad-EdgeTPU PCIe cards (§3.1). Each device
// owns an independent link, mirroring the per-M.2-slot PCIe 2.0 lanes
// behind the switch.
//
// Concurrency contract: the device list is immutable after construction
// (no lock needed to hand out references), and each Device guards its own
// state internally, so the aggregate queries below -- makespan(),
// total_active_time() -- are safe to call from any thread while workers
// are in flight. reset() is the exception: it must only run when no work
// is pending, like Runtime::reset().
#pragma once

#include <memory>
#include <vector>

#include "sim/device.hpp"

namespace gptpu::sim {

class DevicePool {
 public:
  explicit DevicePool(usize count, bool functional = true,
                      usize memory_bytes = perfmodel::kEdgeTpuMemoryBytes);

  /// Pool of devices of a given profile (memory, link, compute scale).
  DevicePool(usize count, bool functional, const DeviceProfile& profile);

  [[nodiscard]] usize size() const { return devices_.size(); }
  [[nodiscard]] Device& device(usize i) { return *devices_.at(i); }
  [[nodiscard]] const Device& device(usize i) const { return *devices_.at(i); }
  [[nodiscard]] const TimingModel& timing() const { return timing_; }

  /// Modelled instant when every device is idle: the pool's makespan.
  [[nodiscard]] Seconds makespan() const;

  /// Sum of busy time across all devices (for active-energy integration).
  [[nodiscard]] Seconds total_active_time() const;

  /// Attaches one fault injector to every device (nullptr detaches). Must
  /// run before workers start driving the pool, like set_compute_pool.
  void set_fault_injector(FaultInjector* injector) {
    for (auto& dev : devices_) dev->set_fault_injector(injector);
  }

  void reset();

 private:
  TimingModel timing_;
  std::vector<std::unique_ptr<Device>> devices_;
};

}  // namespace gptpu::sim
