#include "sim/device_pool.hpp"

#include <algorithm>

#include "common/thread_pool.hpp"

namespace gptpu::sim {

DevicePool::DevicePool(usize count, bool functional, usize memory_bytes) {
  GPTPU_CHECK(count >= 1, "DevicePool needs at least one device");
  devices_.reserve(count);
  for (usize i = 0; i < count; ++i) {
    DeviceConfig cfg;
    cfg.id = static_cast<u32>(i);
    cfg.memory_bytes = memory_bytes;
    cfg.functional = functional;
    devices_.push_back(std::make_unique<Device>(cfg, &timing_));
    // Functional kernels stripe their rows across the process-wide pool;
    // timing-only devices execute no payloads and skip the wiring.
    if (functional) devices_.back()->set_compute_pool(&shared_worker_pool());
  }
}

DevicePool::DevicePool(usize count, bool functional,
                       const DeviceProfile& profile)
    : timing_(profile) {
  GPTPU_CHECK(count >= 1, "DevicePool needs at least one device");
  devices_.reserve(count);
  for (usize i = 0; i < count; ++i) {
    DeviceConfig cfg;
    cfg.id = static_cast<u32>(i);
    cfg.memory_bytes = profile.memory_bytes;
    cfg.functional = functional;
    devices_.push_back(std::make_unique<Device>(cfg, &timing_));
    if (functional) devices_.back()->set_compute_pool(&shared_worker_pool());
  }
}

Seconds DevicePool::makespan() const {
  Seconds m = 0;
  for (const auto& d : devices_) m = std::max(m, d->idle_at());
  return m;
}

Seconds DevicePool::total_active_time() const {
  Seconds t = 0;
  for (const auto& d : devices_) t += d->active_time();
  return t;
}

void DevicePool::reset() {
  for (auto& d : devices_) d->reset();
}

}  // namespace gptpu::sim
