// Analytic time and energy models for the platforms the paper compares.
//
// A kernel is summarized by its work counts; each platform converts work to
// time with a roofline (max of compute time and memory time). Accuracy-side
// results never flow through these models -- they come from functional
// execution. See DESIGN.md §5.2.
#pragma once

#include "common/types.hpp"
#include "perfmodel/machine_constants.hpp"

namespace gptpu::perfmodel {

/// Work performed by one kernel/phase.
struct Work {
  double flops = 0;  // arithmetic operations (of the platform's native kind)
  double bytes = 0;  // bytes moved through memory

  Work& operator+=(const Work& o) {
    flops += o.flops;
    bytes += o.bytes;
    return *this;
  }
};

/// CPU kernel classes with distinct sustained rates (machine_constants).
enum class CpuKernelClass {
  kBlas,    // OpenBLAS-class tuned GEMM
  kScalar,  // plain C loops (Rodinia baselines)
  kVector,  // auto-vectorized streaming loops
  kInt8Gemm // FBGEMM-class AVX2 int8 GEMM
};

/// Seconds a single Zen2 core needs for `work` of a given kernel class.
[[nodiscard]] Seconds cpu_time(CpuKernelClass cls, const Work& work);

/// Seconds for the same work on `threads` cores, applying the measured
/// multicore efficiency (Figure 8's 2.70x at 8 cores anchors the curve).
[[nodiscard]] Seconds cpu_time_parallel(CpuKernelClass cls, const Work& work,
                                        usize threads);

/// Seconds a GPU needs: per-kernel launch overhead + roofline over device
/// memory, plus PCIe transfer of `pcie_bytes`.
[[nodiscard]] Seconds gpu_time(const GpuModel& gpu, const Work& work,
                               double pcie_bytes, usize kernel_launches,
                               bool reduced_precision = false);

/// Energy in joules: active power integrated over `active` seconds plus
/// idle system power over the full `elapsed` wall time. Matches the
/// paper's Watts-Up methodology (§8.1: total system power aggregated over
/// application execution time).
[[nodiscard]] Joules energy(double active_watts, Seconds active,
                            double idle_watts, Seconds elapsed);

}  // namespace gptpu::perfmodel
