// Every calibrated constant of the performance and energy models, in one
// place, with its provenance.
//
// Provenance legend:
//   [T1]   Table 1 of the paper (measured Edge TPU OPS / RPS)
//   [S3.2] Section 3.2 (data-exchange rate: ~6 ms/MB, 8 MB in 48 ms)
//   [S6.2] Section 6.2.3 (Tensorizer model creation: 1.8 ms per 2Kx2K)
//   [S8.1] Section 8.1 (power: idle 40 W, Edge TPU 0.9-1.4 W active,
//          loaded Zen2 core 6.5-12.5 W)
//   [T6]   Table 6 (cost and TDP of compared accelerators)
//   [CAL]  calibrated by us so the modelled end-to-end results land in the
//          paper's measured range (documented per constant); these are the
//          constants a reader would re-fit when porting the model to other
//          hardware.
#pragma once

#include <array>

#include "common/types.hpp"
#include "isa/opcode.hpp"

namespace gptpu::perfmodel {

// ---------------------------------------------------------------------------
// Edge TPU instruction throughput [T1]
// ---------------------------------------------------------------------------

/// Measured operations-per-second per instruction at its reference shape.
struct OpThroughput {
  double ops = 0;  // instructions / second
  double rps = 0;  // result values / second
};

[[nodiscard]] constexpr OpThroughput table1(isa::Opcode op) {
  using isa::Opcode;
  switch (op) {
    case Opcode::kConv2D: return {10268.80, 168240326.89};
    case Opcode::kFullyConnected: return {51924.96, 6646394.57};
    case Opcode::kSub: return {6273.28, 82871343.60};
    case Opcode::kAdd: return {6203.52, 98293633.48};
    case Opcode::kMul: return {14515.84, 216469999.54};
    case Opcode::kCrop: return {4867.96, 1562904391.76};
    case Opcode::kExt: return {1604.78, 3637240203.38};
    case Opcode::kMean: return {408.54, 408.54};
    case Opcode::kMax: return {477.08, 477.08};
    case Opcode::kTanh: return {3232.31, 2148232470.28};
    case Opcode::kReLu: return {11194.26, 4043196115.38};
    // Fused chain instructions have no Table 1 row; their latency is the
    // sum of their member ops' terms (TimingModel handles them explicitly
    // and never consults this table for a fused opcode).
    case Opcode::kFusedPairwise:
    case Opcode::kFusedElementwise: return {};
  }
  return {};
}

// ---------------------------------------------------------------------------
// Edge TPU device model
// ---------------------------------------------------------------------------

/// On-chip data memory [§2.2].
inline constexpr usize kEdgeTpuMemoryBytes = 8ull << 20;

/// Documented peak (4 TOPS = 2e12 MACs/s) [§2.2]. Upper bound only.
inline constexpr double kEdgeTpuPeakMacsPerSec = 2.0e12;

/// Effective sustained MAC rate of conv2D on large (non-NN-shaped) kernels
/// [CAL]: fitted so the conv2D-based GEMM reproduces Figure 6's 1.48x /
/// 1.90x / 2.06x speedups and Section 7.1.3's ~4.3x advantage over the
/// FullyConnected-based GEMM (10% of the 4-TOPS peak; general GEMM shapes
/// cannot keep the systolic array fully fed through a PCIe 2.0 x1 lane).
inline constexpr double kConv2DMacsPerSec = 2.0e11;

/// Effective sustained MAC rate of FullyConnected [CAL]: fitted to Figure
/// 6's sub-1x FullyConnected GEMM bars; consistent with FullyConnected's
/// 25x lower RPS than conv2D in [T1].
inline constexpr double kFullyConnectedMacsPerSec = 2.0e10;

/// On-chip result write-back rate (elements/s) [CAL]: large enough that it
/// only matters for layout ops with huge outputs (ext), consistent with
/// ext's 3.6G RPS in [T1].
inline constexpr double kOutputStreamElemsPerSec = 4.0e9;

/// Host <-> Edge TPU transfer cost [S3.2]: ~6 ms per MB, size-linear
/// (1 MB ~ 6 ms, 8 MB ~ 48 ms), plus a fixed per-transfer setup cost.
inline constexpr double kLinkSecondsPerByte = 6.0e-3 / (1 << 20);
inline constexpr double kLinkFixedSeconds = 20e-6;  // [CAL] small-transfer floor

/// Tensorizer model-creation throughput [S6.2]: 1.8 ms per 2Kx2K int8
/// model => ~2.33e9 elements/s. The reference (TFLite) compiler path is
/// executed for real, not modelled.
inline constexpr double kTensorizerElemsPerSec = (2048.0 * 2048.0) / 1.8e-3;

/// Host-side data reshaping (e.g. the conv2D GEMM input layout transform)
/// [CAL]: a memory-bound single-core strided copy at ~8 GB/s effective.
inline constexpr double kHostReshapeBytesPerSec = 8.0e9;

// ---------------------------------------------------------------------------
// CPU model (AMD Ryzen 3700X, Zen2, one core at 4.4 GHz boost) [S8.1][CAL]
// ---------------------------------------------------------------------------

/// Sustained single-core SGEMM rate of an OpenBLAS-class kernel [CAL]:
/// ~55% of the 140 GFLOP/s Zen2 single-core fp32 peak; fitted against
/// Figure 6's CPU baseline.
inline constexpr double kCpuBlasFlopsPerSec = 7.5e10;

/// Sustained rate of plain scalar C loops (Rodinia-style baselines, no
/// hand vectorization) [CAL]: ~1 useful flop per 3.7 cycles.
inline constexpr double kCpuScalarFlopsPerSec = 1.2e9;

/// Sustained rate of auto-vectorizable streaming loops (e.g. AxBench
/// Black-Scholes inner loop) [CAL].
inline constexpr double kCpuVectorFlopsPerSec = 8.0e9;

/// Single-core effective memory bandwidth [CAL].
inline constexpr double kCpuStreamBytesPerSec = 1.6e10;

/// FBGEMM-class int8 GEMM rate with AVX2 at Table 5's 1Kx1K shape [CAL]:
/// packing/unpacking overheads keep small-matrix FBGEMM well below its
/// large-batch peak; fitted so Table 5's GPTPU speedup lands in 1.2-1.3x.
inline constexpr double kCpuInt8GemmOpsPerSec = 4.0e10;

/// Multicore scaling efficiency of the OpenMP baselines at 8 cores [CAL]:
/// Figure 8 reports 2.70x at 8 cores for these memory-bound workloads.
inline constexpr double kCpuParallelEfficiency8 = 2.70 / 8.0;

// ---------------------------------------------------------------------------
// Power model [S8.1][T6]
// ---------------------------------------------------------------------------

inline constexpr double kSystemIdleWatts = 40.0;
inline constexpr double kEdgeTpuActiveWatts = 1.15;  // 0.9-1.4 W band, middle
inline constexpr double kCpuCoreActiveWatts = 10.0;  // 6.5-12.5 W band
/// Host-side coordination power while GPTPU runs (runtime + Tensorizer
/// keep one core partially busy) [CAL].
inline constexpr double kGptpuHostWatts = 6.5;

// ---------------------------------------------------------------------------
// GPU roofline models (Figure 9, Table 6)
// ---------------------------------------------------------------------------

struct GpuModel {
  const char* name;
  double flops_fp32;    // sustained fp32 FLOP/s
  double flops_reduced; // sustained fp16 / int8-tensor-core FLOP/s
  double mem_bytes_per_sec;
  double pcie_bytes_per_sec;  // host <-> device copy rate
  double kernel_launch_seconds;
  double active_watts;  // board power under load [T6]
  double idle_watts;
  double cost_usd;      // [T6]
};

/// NVIDIA GeForce RTX 2080 (Turing): 10.1 TFLOP/s fp32, Tensor Cores in
/// 8-bit mode for GEMM, 448 GB/s GDDR6, PCIe 3.0 x16 [T6][CAL].
inline constexpr GpuModel kRtx2080{
    "RTX 2080", 8.0e12, 8.0e13, 4.48e11, 1.2e10, 8.0e-6, 215.0, 15.0, 699.66};

/// NVIDIA Jetson Nano: 128 Maxwell cores (236 GFLOP/s fp32 peak), 25.6
/// GB/s shared LPDDR4 [T6]. The sustained rates here are [CAL] fitted to
/// the paper's measurement that the Nano runs these workloads only ~1.15x
/// faster than a CPU core (§9.4): Rodinia kernels on the Nano reach a few
/// percent of peak (tiny SM count, unified-memory stalls, scaled-down
/// datasets that cannot hide launch latency).
inline constexpr GpuModel kJetsonNano{
    "Jetson Nano", 6.0e9, 1.2e10, 6.0e9, 3.0e9, 1.0e-4, 10.0, 0.5, 123.99};

/// Table 6 rows for the accelerators we compare.
struct AcceleratorSpec {
  const char* name;
  double cost_usd;
  double power_watts;
  const char* comment;
};

inline constexpr std::array<AcceleratorSpec, 4> kTable6 = {{
    {"Single Edge TPU", 24.99, 2.0, ""},
    {"RTX 2080", 699.66, 215.0, "Now USD 1399"},
    {"Jetson Nano", 123.99, 10.0, ""},
    {"8x Edge TPU", 159.96, 16.0, "Using 4x dual Edge TPU modules"},
}};

}  // namespace gptpu::perfmodel
