#include "perfmodel/cost_model.hpp"

#include <algorithm>
#include <cmath>

namespace gptpu::perfmodel {

namespace {
double rate_for(CpuKernelClass cls) {
  switch (cls) {
    case CpuKernelClass::kBlas: return kCpuBlasFlopsPerSec;
    case CpuKernelClass::kScalar: return kCpuScalarFlopsPerSec;
    case CpuKernelClass::kVector: return kCpuVectorFlopsPerSec;
    case CpuKernelClass::kInt8Gemm: return kCpuInt8GemmOpsPerSec;
  }
  return kCpuScalarFlopsPerSec;
}
}  // namespace

Seconds cpu_time(CpuKernelClass cls, const Work& work) {
  const double compute = work.flops / rate_for(cls);
  const double memory = work.bytes / kCpuStreamBytesPerSec;
  // Scalar loops do not saturate memory bandwidth concurrently with
  // compute; tuned kernels (BLAS, int8 GEMM, vectorized streams) overlap.
  if (cls == CpuKernelClass::kScalar) return compute + memory * 0.25;
  return std::max(compute, memory);
}

Seconds cpu_time_parallel(CpuKernelClass cls, const Work& work,
                          usize threads) {
  GPTPU_CHECK(threads >= 1, "need at least one thread");
  const Seconds single = cpu_time(cls, work);
  if (threads == 1) return single;
  // Power-law scaling anchored at Figure 8's measured 2.70x for 8 cores:
  // speedup(t) = t^alpha with 8^alpha = 2.70. Monotone by construction
  // (memory-bound workloads keep gaining, just sub-linearly).
  const double alpha =
      std::log(8.0 * kCpuParallelEfficiency8) / std::log(8.0);
  const double speedup = std::pow(static_cast<double>(threads), alpha);
  return single / speedup;
}

Seconds gpu_time(const GpuModel& gpu, const Work& work, double pcie_bytes,
                 usize kernel_launches, bool reduced_precision) {
  const double rate = reduced_precision ? gpu.flops_reduced : gpu.flops_fp32;
  const double compute = work.flops / rate;
  const double memory = work.bytes / gpu.mem_bytes_per_sec;
  const double pcie = pcie_bytes / gpu.pcie_bytes_per_sec;
  return static_cast<double>(kernel_launches) * gpu.kernel_launch_seconds +
         std::max(compute, memory) + pcie;
}

Joules energy(double active_watts, Seconds active, double idle_watts,
              Seconds elapsed) {
  GPTPU_CHECK(active >= 0 && elapsed >= 0, "negative time");
  return active_watts * active + idle_watts * elapsed;
}

}  // namespace gptpu::perfmodel
